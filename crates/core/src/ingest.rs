//! Cursor-based ingestion front: continuous change feeds instead of
//! precomputed delta files.
//!
//! The paper assumes the delta input `ΔD` arrives as a file the
//! data-acquisition layer prepared (§3.3). A long-running deployment sees
//! a *feed* instead: an ordered stream of inserts/deletes per source
//! partition, plus occasional **invalidations** — "this key's derived
//! state can no longer be trusted, recompute it" (upstream corrections,
//! reorgs, manual fixes). This module adapts such feeds to the delta
//! engines:
//!
//! * [`IngestSource`] — the feed abstraction: per-partition sequences of
//!   [`FeedItem`]s, each stamped with a monotonically increasing sequence
//!   number, plus a config hash and a schema hash describing the producer.
//! * [`IngestCursor`] — the consumer's durable position: one high-water
//!   mark per source partition and the (source-config, source-schema,
//!   engine-config) hashes captured when the cursor was begun. A cursor
//!   whose hashes no longer match is **stale** — the producer or the
//!   engine changed shape — and every staging call fails until the caller
//!   re-begins it, rather than silently splicing incompatible changes.
//! * [`RunSession::refresh_from`] — drain everything past the high-water
//!   marks, turn invalidations into *targeted recomputation* (a
//!   delete+re-insert of the key's current structure record, which remaps
//!   exactly that record and upserts exactly the MRBG-Store chunks it
//!   feeds), run a workset-driven delta refresh, and only then commit the
//!   cursor — a failed refresh leaves the high-water marks untouched, so
//!   the next call replays the same batch.
//!
//! The shape follows production incremental pipelines (SNIPPETS.md §2:
//! `dataset_cursors` high-water marks, `partition_versions.config_hash` /
//! `schema_hash`, and a `data_invalidations` ledger drained by jobs).

use crate::delta::{Delta, DeltaRecord};
use crate::delta_iter::{DeltaIterativeSpec, DeltaRunReport};
use crate::iter_engine::PartitionedData;
use crate::iterative::IterativeSpec;
use crate::run::RunSession;
use i2mr_common::error::{Error, Result};
use i2mr_common::metrics::JobMetrics;
use i2mr_common::telemetry::EventKind;
use i2mr_mapred::partition::{HashPartitioner, Partitioner};
use i2mr_mapred::types::{KeyData, ValueData};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One item of a change feed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeedItem<K, V> {
    /// A structure change: an insert or delete, exactly as a delta file
    /// would carry it.
    Record(DeltaRecord<K, V>),
    /// The derived state of `key` can no longer be trusted — recompute it
    /// from the current structure (reorg, upstream correction, manual fix).
    Invalidate {
        /// The structure key whose derived chunks must be recomputed.
        key: K,
    },
}

/// A change feed the engine can consume incrementally.
///
/// Sequence numbers are per-partition, strictly increasing, and stable
/// across polls: re-polling with the same `after_seq` returns the same
/// items (at-least-once delivery; the cursor's high-water marks provide
/// the exactly-once consumption on top).
pub trait IngestSource<K: KeyData, V: ValueData>: Send + Sync {
    /// Number of source partitions (independent of the engine's).
    fn n_partitions(&self) -> usize;

    /// All items of partition `p` with sequence number `> after_seq`, in
    /// sequence order.
    fn poll(&self, p: usize, after_seq: u64) -> Result<Vec<(u64, FeedItem<K, V>)>>;

    /// Fingerprint of the producer's configuration. A change means the
    /// feed's semantics may have changed; open cursors go stale.
    fn config_hash(&self) -> u64;

    /// Fingerprint of the data shape (key/value encoding). A change means
    /// existing high-water marks point into an incompatible stream.
    fn schema_hash(&self) -> u64;
}

/// A staged (not yet committed) batch drained from a source.
pub struct IngestBatch<K, V> {
    /// The structure delta assembled from `Record` items, in feed order
    /// (partition-major).
    pub delta: Delta<K, V>,
    /// Keys flagged for targeted recomputation by `Invalidate` items.
    pub invalidations: Vec<K>,
    /// Number of `Record` items staged.
    pub records: u64,
    /// High-water marks to commit once the batch is applied.
    next_hwm: Vec<u64>,
}

impl<K, V> IngestBatch<K, V> {
    /// Whether the batch carries no work at all.
    pub fn is_empty(&self) -> bool {
        self.records == 0 && self.invalidations.is_empty()
    }
}

/// The consumer's position in a feed: per-partition high-water marks plus
/// the version hashes captured at [`IngestCursor::begin`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestCursor {
    hwm: Vec<u64>,
    source_config: u64,
    source_schema: u64,
    engine_config: u64,
}

impl IngestCursor {
    /// Start a cursor at the head of `source` (nothing consumed yet),
    /// versioned against the source's hashes and `engine_config`
    /// ([`crate::run::EngineConfig::config_hash`]).
    pub fn begin<K: KeyData, V: ValueData>(
        source: &impl IngestSource<K, V>,
        engine_config: u64,
    ) -> Self {
        IngestCursor {
            hwm: vec![0; source.n_partitions()],
            source_config: source.config_hash(),
            source_schema: source.schema_hash(),
            engine_config,
        }
    }

    /// The high-water mark of source partition `p`.
    pub fn high_water(&self, p: usize) -> u64 {
        self.hwm[p]
    }

    /// Check this cursor is still valid for `source` under
    /// `engine_config`; a mismatch anywhere makes it stale.
    pub fn ensure_fresh<K: KeyData, V: ValueData>(
        &self,
        source: &impl IngestSource<K, V>,
        engine_config: u64,
    ) -> Result<()> {
        if source.n_partitions() != self.hwm.len() {
            return Err(Error::config(
                "stale ingest cursor: source partition count changed",
            ));
        }
        if source.config_hash() != self.source_config {
            return Err(Error::config(
                "stale ingest cursor: source config hash changed — re-begin the cursor",
            ));
        }
        if source.schema_hash() != self.source_schema {
            return Err(Error::config(
                "stale ingest cursor: source schema hash changed — re-begin the cursor",
            ));
        }
        if engine_config != self.engine_config {
            return Err(Error::config(
                "stale ingest cursor: engine config hash changed — re-begin the cursor",
            ));
        }
        Ok(())
    }

    /// Drain every item past the high-water marks into a staged batch.
    /// Does **not** move the cursor — call [`IngestCursor::commit`] after
    /// the batch has been durably applied, so a failed refresh replays.
    pub fn stage<K: KeyData, V: ValueData>(
        &self,
        source: &impl IngestSource<K, V>,
    ) -> Result<IngestBatch<K, V>> {
        let mut delta = Delta::new();
        let mut invalidations = Vec::new();
        let mut records = 0u64;
        let mut next_hwm = self.hwm.clone();
        for (p, watermark) in next_hwm.iter_mut().enumerate() {
            for (seq, item) in source.poll(p, *watermark)? {
                if seq <= *watermark {
                    return Err(Error::config(
                        "ingest source replayed a sequence number at or below the high-water mark",
                    ));
                }
                *watermark = seq;
                match item {
                    FeedItem::Record(r) => {
                        records += 1;
                        match r.op {
                            crate::delta::Op::Insert => delta.insert(r.key, r.value),
                            crate::delta::Op::Delete => delta.delete(r.key, r.value),
                        }
                    }
                    FeedItem::Invalidate { key } => invalidations.push(key),
                }
            }
        }
        Ok(IngestBatch {
            delta,
            invalidations,
            records,
            next_hwm,
        })
    }

    /// Advance the high-water marks to a staged batch's frontier.
    pub fn commit<K, V>(&mut self, batch: &IngestBatch<K, V>) {
        self.hwm.clone_from(&batch.next_hwm);
    }
}

/// An in-memory feed for tests, examples, and benches: push items in,
/// poll them back out, flip the hashes to simulate producer changes.
pub struct MemSource<K, V> {
    parts: Vec<Mutex<PartFeed<K, V>>>,
    config_hash: AtomicU64,
    schema_hash: AtomicU64,
}

struct PartFeed<K, V> {
    next_seq: u64,
    items: Vec<(u64, FeedItem<K, V>)>,
}

impl<K: KeyData, V: ValueData> MemSource<K, V> {
    /// A source with `n` partitions and default hashes.
    pub fn new(n: usize) -> Self {
        MemSource {
            parts: (0..n)
                .map(|_| {
                    Mutex::new(PartFeed {
                        next_seq: 0,
                        items: Vec::new(),
                    })
                })
                .collect(),
            config_hash: AtomicU64::new(1),
            schema_hash: AtomicU64::new(1),
        }
    }

    /// Append an item to partition `p`; returns its sequence number.
    pub fn push(&self, p: usize, item: FeedItem<K, V>) -> u64 {
        let mut part = self.parts[p].lock();
        part.next_seq += 1;
        let seq = part.next_seq;
        part.items.push((seq, item));
        seq
    }

    /// Append an insert record.
    pub fn push_insert(&self, p: usize, key: K, value: V) -> u64 {
        self.push(
            p,
            FeedItem::Record(DeltaRecord {
                key,
                value,
                op: crate::delta::Op::Insert,
            }),
        )
    }

    /// Append a delete record (must match an existing record exactly).
    pub fn push_delete(&self, p: usize, key: K, value: V) -> u64 {
        self.push(
            p,
            FeedItem::Record(DeltaRecord {
                key,
                value,
                op: crate::delta::Op::Delete,
            }),
        )
    }

    /// Append an invalidation for `key`.
    pub fn push_invalidate(&self, p: usize, key: K) -> u64 {
        self.push(p, FeedItem::Invalidate { key })
    }

    /// Simulate a producer config change (stales every open cursor).
    pub fn bump_config(&self) {
        self.config_hash.fetch_add(1, Ordering::Relaxed);
    }

    /// Simulate a schema change (stales every open cursor).
    pub fn bump_schema(&self) {
        self.schema_hash.fetch_add(1, Ordering::Relaxed);
    }
}

impl<K: KeyData, V: ValueData> IngestSource<K, V> for MemSource<K, V> {
    fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    fn poll(&self, p: usize, after_seq: u64) -> Result<Vec<(u64, FeedItem<K, V>)>> {
        Ok(self.parts[p]
            .lock()
            .items
            .iter()
            .filter(|(seq, _)| *seq > after_seq)
            .cloned()
            .collect())
    }

    fn config_hash(&self) -> u64 {
        self.config_hash.load(Ordering::Relaxed)
    }

    fn schema_hash(&self) -> u64 {
        self.schema_hash.load(Ordering::Relaxed)
    }
}

/// The current structure value of `sk`, if present.
fn current_structure_value<S: IterativeSpec>(
    spec: &S,
    data: &PartitionedData<S::SK, S::SV, S::DK, S::DV>,
    sk: &S::SK,
) -> Option<S::SV> {
    let dk = spec.project(sk);
    let p = HashPartitioner.partition(&dk, data.n_partitions());
    let groups = &data.structure[p];
    let gi = groups.binary_search_by(|g| g.dk.cmp(&dk)).ok()?;
    groups[gi]
        .records
        .iter()
        .find(|(k, _)| k == sk)
        .map(|(_, v)| v.clone())
}

impl<'s, S: IterativeSpec> RunSession<'s, S> {
    /// Drain `source` past `cursor`'s high-water marks and refresh the
    /// computation with a workset-driven delta run.
    ///
    /// * `Record` items become the structure delta, exactly as a delta
    ///   file would.
    /// * `Invalidate { key }` items become a delete+re-insert of the
    ///   key's *current* structure record: the delta engine then remaps
    ///   exactly that record, upserts exactly the MRBG-Store chunks it
    ///   feeds, and seeds the workset with exactly the state keys it
    ///   touches — targeted recomputation, not a full rebuild.
    ///   Invalidations of keys absent from the structure are counted but
    ///   produce no work.
    /// * The cursor commits only after the refresh succeeds; on error the
    ///   high-water marks are untouched and the next call replays the
    ///   batch.
    ///
    /// An empty batch returns an empty, converged report without running
    /// the engine. Ingestion counters land in the report's first
    /// iteration slot (`ingested_records` / `invalidated_keys`).
    pub fn refresh_from<Src>(
        &self,
        data: &mut PartitionedData<S::SK, S::SV, S::DK, S::DV>,
        cursor: &mut IngestCursor,
        source: &Src,
    ) -> Result<DeltaRunReport>
    where
        S: DeltaIterativeSpec,
        Src: IngestSource<S::SK, S::SV>,
    {
        let engine_hash = self.config().config_hash();
        cursor.ensure_fresh(source, engine_hash)?;
        let batch = cursor.stage(source)?;
        let rec = self.telemetry().recorder().cloned();
        if let Some(r) = &rec {
            r.emit_driver(EventKind::IngestPoll {
                records: batch.records,
                invalidations: batch.invalidations.len() as u64,
            });
        }
        if batch.is_empty() {
            cursor.commit(&batch);
            if let Some(r) = &rec {
                r.emit_driver(EventKind::IngestCommit {
                    records: batch.records,
                });
            }
            return Ok(DeltaRunReport {
                converged: true,
                ..Default::default()
            });
        }

        let mut delta = batch.delta.clone();
        let mut invalidated_keys = 0u64;
        for key in &batch.invalidations {
            invalidated_keys += 1;
            if let Some(sv) = current_structure_value(self.spec(), data, key) {
                delta.update(key.clone(), sv.clone(), sv);
            }
        }

        let mut report = self.run_delta(data, &delta)?;
        let counters = JobMetrics {
            ingested_records: batch.records,
            invalidated_keys,
            ..Default::default()
        };
        match report.per_iteration.first_mut() {
            Some(first) => first.merge(&counters),
            None => report.per_iteration.push(counters),
        }
        cursor.commit(&batch);
        if let Some(r) = &rec {
            r.emit_driver(EventKind::IngestCommit {
                records: batch.records,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::Op;

    #[test]
    fn cursor_stages_past_high_water_only() {
        let src: MemSource<u64, String> = MemSource::new(2);
        src.push_insert(0, 1, "a".into());
        src.push_insert(1, 2, "b".into());
        let mut cursor = IngestCursor::begin(&src, 7);
        let batch = cursor.stage(&src).unwrap();
        assert_eq!(batch.records, 2);
        cursor.commit(&batch);
        assert_eq!((cursor.high_water(0), cursor.high_water(1)), (1, 1));

        // Nothing new: empty batch, marks unchanged.
        let batch = cursor.stage(&src).unwrap();
        assert!(batch.is_empty());

        // One new item on partition 1 only.
        src.push_delete(1, 2, "b".into());
        let batch = cursor.stage(&src).unwrap();
        assert_eq!(batch.records, 1);
        assert_eq!(batch.delta.records()[0].op, Op::Delete);
        cursor.commit(&batch);
        assert_eq!((cursor.high_water(0), cursor.high_water(1)), (1, 2));
    }

    #[test]
    fn staging_without_commit_replays() {
        let src: MemSource<u64, String> = MemSource::new(1);
        src.push_insert(0, 1, "a".into());
        let cursor = IngestCursor::begin(&src, 0);
        let b1 = cursor.stage(&src).unwrap();
        let b2 = cursor.stage(&src).unwrap();
        assert_eq!(b1.records, b2.records);
        assert_eq!(b1.delta.records(), b2.delta.records());
    }

    #[test]
    fn hash_changes_stale_the_cursor() {
        let src: MemSource<u64, String> = MemSource::new(1);
        let cursor = IngestCursor::begin(&src, 42);
        cursor.ensure_fresh(&src, 42).unwrap();
        assert!(cursor.ensure_fresh(&src, 43).is_err(), "engine config");
        src.bump_config();
        assert!(cursor.ensure_fresh(&src, 42).is_err(), "source config");
        let cursor = IngestCursor::begin(&src, 42);
        src.bump_schema();
        assert!(cursor.ensure_fresh(&src, 42).is_err(), "source schema");
    }

    #[test]
    fn invalidations_are_separated_from_records() {
        let src: MemSource<u64, String> = MemSource::new(1);
        src.push_insert(0, 1, "a".into());
        src.push_invalidate(0, 9);
        src.push_invalidate(0, 10);
        let cursor = IngestCursor::begin(&src, 0);
        let batch = cursor.stage(&src).unwrap();
        assert_eq!(batch.records, 1);
        assert_eq!(batch.invalidations, vec![9, 10]);
        assert!(!batch.is_empty());
    }

    #[test]
    fn non_monotonic_source_is_rejected() {
        struct Bad;
        impl IngestSource<u64, String> for Bad {
            fn n_partitions(&self) -> usize {
                1
            }
            fn poll(&self, _p: usize, _after: u64) -> Result<Vec<(u64, FeedItem<u64, String>)>> {
                Ok(vec![(
                    0, // violates seq > after_seq for after_seq = 0
                    FeedItem::Invalidate { key: 1 },
                )])
            }
            fn config_hash(&self) -> u64 {
                1
            }
            fn schema_hash(&self) -> u64 {
                1
            }
        }
        let cursor = IngestCursor::begin(&Bad, 0);
        assert!(cursor.stage(&Bad).is_err());
    }
}
