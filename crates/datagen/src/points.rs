//! Gaussian-mixture point generator — the BigCross stand-in for Kmeans.
//!
//! The paper clusters 46 M 57-dimensional points into 64 clusters. The
//! Kmeans experiments need (a) points that actually cluster, (b) seeded
//! initial centroids, and (c) point-level deltas. A mixture of spherical
//! Gaussians around seeded centers provides all three at any scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded Gaussian-mixture generator.
#[derive(Clone, Debug)]
pub struct PointsGen {
    n_points: u64,
    dims: usize,
    k_clusters: usize,
    spread: f64,
    seed: u64,
}

impl PointsGen {
    /// `n_points` points in `dims` dimensions around `k_clusters` centers.
    pub fn new(n_points: u64, dims: usize, k_clusters: usize, seed: u64) -> Self {
        assert!(dims > 0 && k_clusters > 0);
        PointsGen {
            n_points,
            dims,
            k_clusters,
            spread: 0.5,
            seed,
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The true mixture centers (cluster `c` centered at `10·c` in every
    /// coordinate direction rotated by the seed).
    pub fn true_centers(&self) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6365_6e74);
        (0..self.k_clusters)
            .map(|_| (0..self.dims).map(|_| rng.gen_range(-50.0..50.0)).collect())
            .collect()
    }

    /// Generate `(point id, coordinates)` for ids `id_from..id_from+count`,
    /// stable per id across batches.
    pub fn generate(&self, id_from: u64, count: u64) -> Vec<(u64, Vec<f64>)> {
        let centers = self.true_centers();
        (id_from..id_from + count)
            .map(|id| {
                let mut rng =
                    StdRng::seed_from_u64(self.seed ^ id.wrapping_mul(0xD134_2543_DE82_EF95));
                let c = &centers[(id as usize) % centers.len()];
                let p = c
                    .iter()
                    .map(|&x| x + self.spread * gaussianish(&mut rng))
                    .collect();
                (id, p)
            })
            .collect()
    }

    /// Full dataset (ids `0..n_points`).
    pub fn all(&self) -> Vec<(u64, Vec<f64>)> {
        self.generate(0, self.n_points)
    }

    /// `k` seeded initial centroids drawn from the data ("randomly pick 64
    /// points from the whole data set as 64 initial centers", §8.1.4).
    pub fn initial_centroids(&self, k: usize) -> Vec<(u32, Vec<f64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x696e_6974);
        (0..k as u32)
            .map(|cid| {
                let id = rng.gen_range(0..self.n_points);
                let (_, p) = &self.generate(id, 1)[0];
                (cid, p.clone())
            })
            .collect()
    }
}

/// ~N(0,1) via Irwin–Hall.
fn gaussianish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_dimensional() {
        let g = PointsGen::new(100, 5, 3, 11);
        let a = g.all();
        let b = g.all();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|(_, p)| p.len() == 5));
    }

    #[test]
    fn ids_stable_across_batches() {
        let g = PointsGen::new(100, 3, 2, 5);
        let all = g.generate(0, 100);
        let tail = g.generate(60, 40);
        assert_eq!(&all[60..], &tail[..]);
    }

    #[test]
    fn points_cluster_around_their_centers() {
        let g = PointsGen::new(300, 4, 3, 13);
        let centers = g.true_centers();
        for (id, p) in g.all() {
            let c = &centers[(id as usize) % 3];
            let d2: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            // spread 0.5, 4 dims: distance well under the ~100 inter-center
            // scale.
            assert!(d2.sqrt() < 10.0, "point {id} too far: {}", d2.sqrt());
        }
    }

    #[test]
    fn initial_centroids_have_requested_count_and_ids() {
        let g = PointsGen::new(500, 6, 4, 2);
        let cents = g.initial_centroids(8);
        assert_eq!(cents.len(), 8);
        for (i, (cid, p)) in cents.iter().enumerate() {
            assert_eq!(*cid, i as u32);
            assert_eq!(p.len(), 6);
        }
    }
}
