//! Synthetic tweet generator — the Twitter-corpus stand-in for APriori.
//!
//! The paper mines frequent word pairs from 52 M tweets. What the
//! accumulator-reduce experiment needs from the corpus is (a) short
//! documents, (b) a heavily skewed word distribution so a small candidate
//! set of frequent pairs exists, and (c) an append-only delta ("the last
//! week's messages", 7.9 % of the input). A Zipf vocabulary delivers all
//! three.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded tweet-corpus generator.
#[derive(Clone, Debug)]
pub struct TweetGen {
    vocabulary: usize,
    words_per_tweet: (usize, usize),
    zipf_s: f64,
    seed: u64,
}

impl TweetGen {
    /// Corpus over `vocabulary` distinct words with Zipf exponent `zipf_s`.
    pub fn new(vocabulary: usize, seed: u64) -> Self {
        TweetGen {
            vocabulary,
            words_per_tweet: (4, 12),
            zipf_s: 1.05,
            seed,
        }
    }

    /// Override the words-per-tweet range.
    pub fn words_per_tweet(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && max >= min);
        self.words_per_tweet = (min, max);
        self
    }

    /// Generate tweets `(tweet id, text)` for ids `id_from..id_from+count`.
    ///
    /// Using an explicit id range makes append deltas trivially disjoint
    /// from the base corpus.
    pub fn generate(&self, id_from: u64, count: u64) -> Vec<(u64, String)> {
        let zipf = Zipf::new(self.vocabulary, self.zipf_s);
        let mut out = Vec::with_capacity(count as usize);
        for id in id_from..id_from + count {
            // Per-tweet RNG keyed by id: the same tweet id always has the
            // same text regardless of batch boundaries.
            let mut rng = StdRng::seed_from_u64(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let n = rng.gen_range(self.words_per_tweet.0..=self.words_per_tweet.1);
            let words: Vec<String> = (0..n)
                .map(|_| format!("w{}", zipf.sample(&mut rng)))
                .collect();
            out.push((id, words.join(" ")));
        }
        out
    }

    /// The most frequent `k` single words — candidate generation input for
    /// APriori's preprocessing step.
    pub fn top_words(&self, corpus: &[(u64, String)], k: usize) -> Vec<String> {
        let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for (_, text) in corpus {
            for w in text.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> = counts.into_iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        pairs
            .into_iter()
            .take(k)
            .map(|(w, _)| w.to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_across_batches() {
        let g = TweetGen::new(1000, 42);
        let all = g.generate(0, 100);
        let tail = g.generate(50, 50);
        assert_eq!(&all[50..], &tail[..]);
    }

    #[test]
    fn word_counts_respect_range() {
        let g = TweetGen::new(500, 1).words_per_tweet(3, 5);
        for (_, text) in g.generate(0, 200) {
            let n = text.split_whitespace().count();
            assert!((3..=5).contains(&n), "{n} words");
        }
    }

    #[test]
    fn vocabulary_is_skewed() {
        let g = TweetGen::new(2000, 7);
        let corpus = g.generate(0, 2000);
        let top = g.top_words(&corpus, 10);
        assert_eq!(top.len(), 10);
        // w0 is the most frequent Zipf rank.
        assert_eq!(top[0], "w0");
    }

    #[test]
    fn append_delta_is_disjoint() {
        let g = TweetGen::new(100, 3);
        let base = g.generate(0, 1000);
        let delta = g.generate(1000, 86); // ~7.9 % like the paper
        let base_ids: std::collections::HashSet<u64> = base.iter().map(|(i, _)| *i).collect();
        assert!(delta.iter().all(|(i, _)| !base_ids.contains(i)));
    }
}
