//! Synthetic workload and delta generators.
//!
//! Stand-ins for the paper's datasets (Table 3 / Table 5), scaled to run on
//! one machine while preserving the properties each experiment depends on
//! (see `DESIGN.md` §1 for the substitution rationale):
//!
//! | paper dataset | generator | preserved property |
//! |---|---|---|
//! | Twitter (tweets) | [`text::TweetGen`] | Zipf-skewed word-pair frequencies |
//! | ClueWeb (web graph) | [`graph::GraphGen`] | power-law-ish degrees, size-ratio presets xs/s/m/l |
//! | ClueWeb2 (weighted) | [`graph::GraphGen::weighted`] | Gaussian edge weights |
//! | BigCross (points) | [`points::PointsGen`] | Gaussian-mixture clusters |
//! | WikiTalk (matrix) | [`matrix::MatrixGen`] | block-sparse matrix + vector |
//!
//! All generators are seeded and fully deterministic: the same seed yields
//! byte-identical datasets, which the equivalence tests rely on.
//! [`delta`] generates the incremental inputs (e.g. "10 % of input changed"
//! in §8.1.5).

pub mod delta;
pub mod graph;
pub mod matrix;
pub mod points;
pub mod text;
pub mod zipf;

pub use delta::{graph_delta, matrix_delta, points_delta, tweets_append, DeltaSpec};
pub use graph::{GraphGen, GraphPreset};
pub use matrix::MatrixGen;
pub use points::PointsGen;
pub use text::TweetGen;
pub use zipf::Zipf;
