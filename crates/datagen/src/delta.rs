//! Delta generators — "changing p % of the input data" (paper §8.1.5).
//!
//! For the iterative algorithms the paper generates deltas by randomly
//! changing 10 % of the input records; for APriori the delta is the last
//! week of tweets (7.9 %, append-only). These helpers produce
//! [`i2mr_core::Delta`] values with the same structure, deterministically
//! from a seed.

use i2mr_core::delta::Delta;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What fraction of records to change, and how.
#[derive(Clone, Copy, Debug)]
pub struct DeltaSpec {
    /// Fraction of records to modify (`0.10` = the paper's default).
    pub change_fraction: f64,
    /// Of the changed records, fraction to delete outright (the rest are
    /// updates). Insertions are controlled by `insert_fraction`.
    pub delete_fraction: f64,
    /// New records to insert, as a fraction of the base size.
    pub insert_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeltaSpec {
    fn default() -> Self {
        DeltaSpec {
            change_fraction: 0.10,
            delete_fraction: 0.0,
            insert_fraction: 0.0,
            seed: 0xDE17A,
        }
    }
}

impl DeltaSpec {
    /// The paper's standard "10 % changed" delta.
    pub fn ten_percent(seed: u64) -> Self {
        DeltaSpec {
            seed,
            ..Default::default()
        }
    }

    /// A small-delta variant ("1 % changed", Fig. 11).
    pub fn one_percent(seed: u64) -> Self {
        DeltaSpec {
            change_fraction: 0.01,
            seed,
            ..Default::default()
        }
    }
}

/// Graph delta: rewire/delete/insert adjacency records.
///
/// Updates rewire one out-edge of the chosen vertex; deletions drop the
/// whole record (vertex leaves the graph); insertions add fresh vertices
/// `n, n+1, …` pointing at random existing vertices.
pub fn graph_delta(base: &[(u64, Vec<u64>)], spec: DeltaSpec) -> Delta<u64, Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6764_656c);
    let n = base.len() as u64;
    let mut delta = Delta::new();
    for (v, outs) in base {
        if !rng.gen_bool(spec.change_fraction) {
            continue;
        }
        if rng.gen_bool(spec.delete_fraction) {
            delta.delete(*v, outs.clone());
        } else {
            // Rewire: replace one out-edge (or add one if none) with a new
            // distinct target.
            let mut new_outs = outs.clone();
            let target = loop {
                let t = rng.gen_range(0..n);
                if t != *v && !new_outs.contains(&t) {
                    break t;
                }
            };
            if new_outs.is_empty() {
                new_outs.push(target);
            } else {
                let idx = rng.gen_range(0..new_outs.len());
                new_outs[idx] = target;
            }
            new_outs.sort_unstable();
            delta.update(*v, outs.clone(), new_outs);
        }
    }
    let inserts = (n as f64 * spec.insert_fraction).round() as u64;
    for i in 0..inserts {
        let target = rng.gen_range(0..n);
        delta.insert(n + i, vec![target]);
    }
    delta
}

/// Weighted-graph delta (SSSP): only weight *decreases* and edge insertions,
/// which monotone min-plus iteration refreshes exactly; see DESIGN.md on the
/// deletion limitation of incremental shortest paths.
pub fn weighted_graph_delta(
    base: &[(u64, Vec<(u64, f64)>)],
    spec: DeltaSpec,
) -> Delta<u64, Vec<(u64, f64)>> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7767_6425);
    let n = base.len() as u64;
    let mut delta = Delta::new();
    for (v, outs) in base {
        if !rng.gen_bool(spec.change_fraction) || outs.is_empty() {
            continue;
        }
        let mut new_outs = outs.clone();
        if rng.gen_bool(0.5) {
            // Decrease one weight.
            let idx = rng.gen_range(0..new_outs.len());
            new_outs[idx].1 *= rng.gen_range(0.3..0.9);
        } else {
            // Insert a new edge.
            let target = rng.gen_range(0..n);
            if target != *v && !new_outs.iter().any(|(t, _)| *t == target) {
                new_outs.push((target, rng.gen_range(0.1..1.0)));
                new_outs.sort_by_key(|e| e.0);
            }
        }
        delta.update(*v, outs.clone(), new_outs);
    }
    delta
}

/// Point delta for Kmeans: replace a fraction of points with re-sampled
/// positions, plus optional fresh points.
pub fn points_delta(base: &[(u64, Vec<f64>)], spec: DeltaSpec) -> Delta<u64, Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7074_6425);
    let n = base.len() as u64;
    let mut delta = Delta::new();
    for (id, p) in base {
        if !rng.gen_bool(spec.change_fraction) {
            continue;
        }
        let moved: Vec<f64> = p.iter().map(|x| x + rng.gen_range(-2.0..2.0)).collect();
        delta.update(*id, p.clone(), moved);
    }
    let inserts = (n as f64 * spec.insert_fraction).round() as u64;
    let dims = base.first().map(|(_, p)| p.len()).unwrap_or(2);
    for i in 0..inserts {
        let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(-60.0..60.0)).collect();
        delta.insert(n + i, p);
    }
    delta
}

/// Matrix delta for GIM-V: perturb values inside a fraction of blocks.
pub fn matrix_delta(
    base: &[((u64, u64), crate::matrix::Block)],
    spec: DeltaSpec,
) -> Delta<(u64, u64), crate::matrix::Block> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6d78_6425);
    let mut delta = Delta::new();
    for (key, block) in base {
        if !rng.gen_bool(spec.change_fraction) || block.is_empty() {
            continue;
        }
        let mut new_block = block.clone();
        let idx = rng.gen_range(0..new_block.len());
        new_block[idx].2 *= rng.gen_range(0.5..1.5);
        delta.update(*key, block.clone(), new_block);
    }
    delta
}

/// Append-only tweet delta (APriori): the "last week's messages".
pub fn tweets_append(
    gen: &crate::text::TweetGen,
    base_count: u64,
    fraction: f64,
) -> Delta<u64, String> {
    let count = (base_count as f64 * fraction).round() as u64;
    let mut delta = Delta::new();
    for (id, text) in gen.generate(base_count, count) {
        delta.insert(id, text);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphGen;
    use crate::matrix::MatrixGen;
    use crate::points::PointsGen;
    use crate::text::TweetGen;
    use i2mr_core::delta::Op;

    #[test]
    fn graph_delta_changes_requested_fraction() {
        let g = GraphGen::new(1000, 5000, 1).generate();
        let d = graph_delta(&g, DeltaSpec::ten_percent(7));
        // Updates are del+ins pairs; ~10% of 1000 → ~100 changes → ~200
        // records.
        let changed_vertices: std::collections::HashSet<u64> =
            d.records().iter().map(|r| r.key).collect();
        let frac = changed_vertices.len() as f64 / 1000.0;
        assert!((0.05..0.16).contains(&frac), "changed {frac}");
        assert!(d.records().len() >= changed_vertices.len());
    }

    #[test]
    fn graph_delta_is_deterministic() {
        let g = GraphGen::new(200, 1000, 2).generate();
        let a = graph_delta(&g, DeltaSpec::ten_percent(5));
        let b = graph_delta(&g, DeltaSpec::ten_percent(5));
        assert_eq!(a, b);
    }

    #[test]
    fn graph_delta_updates_apply_cleanly() {
        let g = GraphGen::new(300, 2000, 3).generate();
        let d = graph_delta(
            &g,
            DeltaSpec {
                change_fraction: 0.1,
                delete_fraction: 0.2,
                insert_fraction: 0.02,
                seed: 11,
            },
        );
        let updated = d.apply_to(&g);
        // Deletions shrink, insertions grow; net must stay close.
        assert!(updated.len() > 290 && updated.len() <= 306 + 6);
        // Every update's old value matched an existing record (apply_to
        // would otherwise leave stale entries with duplicated keys).
        let mut keys: Vec<u64> = updated.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), updated.len(), "duplicate keys after apply");
    }

    #[test]
    fn weighted_delta_never_deletes_records() {
        let g = GraphGen::new(200, 1500, 4).weighted();
        let d = weighted_graph_delta(&g, DeltaSpec::ten_percent(9));
        // Updates only: equal numbers of deletes and inserts, and every
        // delete is immediately followed by its insert (update pairs).
        let dels = d.records().iter().filter(|r| r.op == Op::Delete).count();
        let inss = d.records().iter().filter(|r| r.op == Op::Insert).count();
        assert_eq!(dels, inss);
        assert_eq!(d.apply_to(&g).len(), g.len());
    }

    #[test]
    fn points_delta_moves_points() {
        let g = PointsGen::new(500, 3, 4, 6);
        let pts = g.all();
        let d = points_delta(&pts, DeltaSpec::ten_percent(13));
        let updated = d.apply_to(&pts);
        assert_eq!(updated.len(), pts.len());
        let moved = updated
            .iter()
            .filter(|(id, p)| pts[*id as usize].1 != *p)
            .count();
        assert!(moved > 20, "moved {moved}");
    }

    #[test]
    fn matrix_delta_perturbs_blocks() {
        let g = MatrixGen::new(64, 8, 600, 5);
        let blocks = g.blocks();
        let d = matrix_delta(&blocks, DeltaSpec::ten_percent(3));
        assert!(!d.is_empty());
        let updated = d.apply_to(&blocks);
        assert_eq!(updated.len(), blocks.len());
    }

    #[test]
    fn tweets_append_is_insert_only_and_sized() {
        let gen = TweetGen::new(500, 8);
        let d = tweets_append(&gen, 1000, 0.079);
        assert!(d.is_insert_only());
        assert_eq!(d.len(), 79);
    }
}
