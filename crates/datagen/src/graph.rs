//! Directed graph generator — the ClueWeb stand-in.
//!
//! Produces adjacency-list records `(vertex, out-neighbors)` with
//! Zipf-skewed in-degree (popular pages attract most links, as in real web
//! graphs) and every vertex present as a record (possibly with an empty
//! out-list), which the iterative engines rely on (state keys are defined
//! by structure records).
//!
//! The `ClueWeb-{xs,s,m,l}` presets reproduce Table 5's size *ratios*
//! (pages ×10 per step, links ≈ ×11/×9.6/×2) at 1/1000 scale.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scaled equivalents of the paper's Table 5 datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphPreset {
    /// ClueWeb-xs: 100 vertices, ~1.6 k edges (paper: 100 k / 1.65 M).
    ClueWebXs,
    /// ClueWeb-s: 1 k vertices, ~19 k edges (paper: 1 M / 18.9 M).
    ClueWebS,
    /// ClueWeb-m: 10 k vertices, ~181 k edges (paper: 10 M / 181 M).
    ClueWebM,
    /// ClueWeb-l: 20 k vertices, ~365 k edges (paper: 20 M / 365 M).
    ClueWebL,
}

impl GraphPreset {
    /// `(n_vertices, n_edges)` of the scaled preset.
    pub fn size(self) -> (u64, u64) {
        match self {
            GraphPreset::ClueWebXs => (100, 1_650),
            GraphPreset::ClueWebS => (1_000, 18_945),
            GraphPreset::ClueWebM => (10_000, 181_571),
            GraphPreset::ClueWebL => (20_000, 365_684),
        }
    }

    /// Preset name as used in Fig. 12's x-axis.
    pub fn name(self) -> &'static str {
        match self {
            GraphPreset::ClueWebXs => "ClueWeb-xs",
            GraphPreset::ClueWebS => "ClueWeb-s",
            GraphPreset::ClueWebM => "ClueWeb-m",
            GraphPreset::ClueWebL => "ClueWeb-l",
        }
    }

    /// All presets in Fig. 12 order.
    pub const ALL: [GraphPreset; 4] = [
        GraphPreset::ClueWebXs,
        GraphPreset::ClueWebS,
        GraphPreset::ClueWebM,
        GraphPreset::ClueWebL,
    ];
}

/// Seeded directed-graph generator.
#[derive(Clone, Debug)]
pub struct GraphGen {
    n: u64,
    m: u64,
    seed: u64,
    /// Skew of the target-vertex (in-degree) distribution.
    zipf_s: f64,
}

impl GraphGen {
    /// Graph with `n` vertices and ~`m` edges.
    pub fn new(n: u64, m: u64, seed: u64) -> Self {
        assert!(n > 0, "graph needs vertices");
        GraphGen {
            n,
            m,
            seed,
            zipf_s: 0.8,
        }
    }

    /// Generator for a Table 5 preset.
    pub fn preset(p: GraphPreset, seed: u64) -> Self {
        let (n, m) = p.size();
        Self::new(n, m, seed)
    }

    /// Number of vertices.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Unweighted adjacency records `(vertex, distinct out-neighbors)`;
    /// every vertex in `0..n` has a record.
    pub fn generate(&self) -> Vec<(u64, Vec<u64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6772_6170_6831);
        let zipf = Zipf::new(self.n as usize, self.zipf_s);
        let mut adj: Vec<Vec<u64>> = vec![Vec::new(); self.n as usize];
        // Sources uniform, targets Zipf: heavy in-degree skew, bounded
        // out-degree variance (the average out-degree is m/n).
        for _ in 0..self.m {
            let src = rng.gen_range(0..self.n) as usize;
            let dst = zipf.sample(&mut rng) as u64;
            if dst != src as u64 && !adj[src].contains(&dst) {
                adj[src].push(dst);
            }
        }
        adj.iter_mut().for_each(|l| l.sort_unstable());
        adj.into_iter()
            .enumerate()
            .map(|(i, l)| (i as u64, l))
            .collect()
    }

    /// Weighted adjacency records `(vertex, [(neighbor, weight)])` — the
    /// ClueWeb2 stand-in; weights are positive Gaussian-ish (paper: random
    /// weights following a Gaussian distribution).
    pub fn weighted(&self) -> Vec<(u64, Vec<(u64, f64)>)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6772_6170_6832);
        self.generate()
            .into_iter()
            .map(|(v, outs)| {
                let weighted = outs
                    .into_iter()
                    .map(|o| (o, gaussianish_weight(&mut rng)))
                    .collect();
                (v, weighted)
            })
            .collect()
    }
}

/// Positive weight ~ |N(1, 0.25)| + 0.05, via a 12-uniform approximation
/// (Irwin–Hall) so no external distribution crate is needed.
fn gaussianish_weight<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0; // ~N(0,1)
    (1.0 + 0.25 * z).abs() + 0.05
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_complete() {
        let g1 = GraphGen::new(200, 1000, 9).generate();
        let g2 = GraphGen::new(200, 1000, 9).generate();
        assert_eq!(g1, g2);
        assert_eq!(g1.len(), 200, "every vertex has a record");
        let keys: Vec<u64> = g1.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = GraphGen::new(100, 500, 1).generate();
        let g2 = GraphGen::new(100, 500, 2).generate();
        assert_ne!(g1, g2);
    }

    #[test]
    fn no_self_loops_no_duplicate_edges() {
        let g = GraphGen::new(150, 2000, 3).generate();
        for (v, outs) in &g {
            assert!(!outs.contains(v), "self loop at {v}");
            let mut dedup = outs.clone();
            dedup.dedup();
            assert_eq!(&dedup, outs, "duplicate edge at {v}");
        }
    }

    #[test]
    fn in_degree_is_skewed() {
        let g = GraphGen::new(500, 5000, 4).generate();
        let mut indeg = vec![0usize; 500];
        for (_, outs) in &g {
            for &o in outs {
                indeg[o as usize] += 1;
            }
        }
        let max = *indeg.iter().max().unwrap();
        let avg = indeg.iter().sum::<usize>() as f64 / 500.0;
        assert!(max as f64 > 5.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn presets_scale_like_table5() {
        let (nxs, mxs) = GraphPreset::ClueWebXs.size();
        let (ns, ms) = GraphPreset::ClueWebS.size();
        let (nl, ml) = GraphPreset::ClueWebL.size();
        assert_eq!(ns / nxs, 10);
        assert!(ms / mxs >= 10);
        assert_eq!(nl, 20_000);
        assert!(ml > 300_000);
    }

    #[test]
    fn weighted_weights_are_positive() {
        let g = GraphGen::new(100, 800, 5).weighted();
        let mut count = 0;
        for (_, outs) in &g {
            for (_, w) in outs {
                assert!(*w > 0.0);
                count += 1;
            }
        }
        assert!(count > 100);
    }
}
