//! A small Zipf sampler (inverse-CDF over a precomputed table).
//!
//! `rand` does not ship a Zipf distribution (that lives in `rand_distr`,
//! which is outside the approved dependency set), so this is a direct
//! implementation: probabilities `p(k) ∝ 1 / k^s` over ranks `1..=n`,
//! sampled by binary search over the cumulative table. Exact, O(log n) per
//! sample, and plenty fast for corpus generation.

use rand::Rng;

/// Zipf distribution over ranks `0..n` (0-based for direct indexing).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` ranks with exponent `s` (s = 1.0 is classic
    /// Zipf; larger is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn samples_are_in_range_and_deterministic() {
        let z = Zipf::new(100, 1.0);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 100);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Rank 0 of Zipf(1.2, 50) carries ~27% of the mass.
        assert!(counts[0] > 4000, "rank 0 sampled {} times", counts[0]);
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((4000..6000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }
}
