//! Block-sparse matrix generator — the WikiTalk stand-in for GIM-V.
//!
//! GIM-V (paper Algorithm 4) operates on an `n × n` matrix and a vector of
//! size `n`, both divided into sub-blocks: structure kv-pairs are
//! `((i, j), m_{i,j})` matrix blocks, state kv-pairs are `(j, v_j)` vector
//! blocks (many-to-one dependency). This generator produces a block-sparse
//! non-negative matrix (row-normalized so repeated multiplication
//! converges) plus an initial vector.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One matrix block: a list of `(local_row, local_col, value)` triples.
pub type Block = Vec<(u32, u32, f64)>;

/// Seeded block-sparse matrix + vector generator.
#[derive(Clone, Debug)]
pub struct MatrixGen {
    n: u64,
    block: u64,
    nnz: u64,
    seed: u64,
}

impl MatrixGen {
    /// `n × n` matrix with `nnz` non-zeros in `block × block` sub-blocks.
    pub fn new(n: u64, block: u64, nnz: u64, seed: u64) -> Self {
        assert!(block > 0 && n % block == 0, "block must divide n");
        MatrixGen {
            n,
            block,
            nnz,
            seed,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Blocks per side.
    pub fn blocks_per_side(&self) -> u64 {
        self.n / self.block
    }

    /// Block edge length.
    pub fn block_size(&self) -> u64 {
        self.block
    }

    /// Structure records `((block_row, block_col), block)`.
    ///
    /// Values are row-normalized (each full row sums to ≤ 1) so the
    /// iterated multiplication `v ← M·v` is non-expanding and converges.
    pub fn blocks(&self) -> Vec<((u64, u64), Block)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6d61_7472_6978);
        // Generate global triples, then row-normalize, then bucket into
        // blocks.
        let mut triples: Vec<(u64, u64, f64)> = Vec::with_capacity(self.nnz as usize);
        for _ in 0..self.nnz {
            let r = rng.gen_range(0..self.n);
            let c = rng.gen_range(0..self.n);
            triples.push((r, c, rng.gen_range(0.1..1.0)));
        }
        let mut row_sums = vec![0.0f64; self.n as usize];
        for &(r, _, v) in &triples {
            row_sums[r as usize] += v;
        }
        let mut blocks: std::collections::BTreeMap<(u64, u64), Block> =
            std::collections::BTreeMap::new();
        for (r, c, v) in triples {
            let norm = v / row_sums[r as usize].max(1.0);
            blocks
                .entry((r / self.block, c / self.block))
                .or_default()
                .push(((r % self.block) as u32, (c % self.block) as u32, norm));
        }
        for b in blocks.values_mut() {
            b.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        blocks.into_iter().collect()
    }

    /// Initial vector blocks `(block_index, values)`, all ones.
    pub fn initial_vector(&self) -> Vec<(u64, Vec<f64>)> {
        (0..self.blocks_per_side())
            .map(|j| (j, vec![1.0; self.block as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = MatrixGen::new(64, 8, 500, 3).blocks();
        let b = MatrixGen::new(64, 8, 500, 3).blocks();
        assert_eq!(a, b);
    }

    #[test]
    fn blocks_fit_dimensions() {
        let g = MatrixGen::new(64, 8, 500, 3);
        for ((bi, bj), block) in g.blocks() {
            assert!(bi < 8 && bj < 8);
            for (r, c, v) in block {
                assert!(r < 8 && c < 8);
                assert!(v > 0.0 && v <= 1.0);
            }
        }
    }

    #[test]
    fn rows_normalized() {
        let g = MatrixGen::new(32, 4, 400, 9);
        let mut row_sums = vec![0.0f64; 32];
        for ((bi, _), block) in g.blocks() {
            for (r, _, v) in block {
                row_sums[(bi * 4 + r as u64) as usize] += v;
            }
        }
        for (r, s) in row_sums.iter().enumerate() {
            assert!(*s <= 1.0 + 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn initial_vector_covers_all_blocks() {
        let g = MatrixGen::new(64, 16, 100, 1);
        let v = g.initial_vector();
        assert_eq!(v.len(), 4);
        assert!(v
            .iter()
            .all(|(_, b)| b.len() == 16 && b.iter().all(|&x| x == 1.0)));
    }

    #[test]
    #[should_panic(expected = "block must divide")]
    fn indivisible_block_panics() {
        MatrixGen::new(10, 3, 10, 0);
    }
}
