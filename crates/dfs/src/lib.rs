//! Mini-DFS: a block-based filesystem simulation standing in for HDFS.
//!
//! The paper's system reads job input from HDFS, writes final results to
//! HDFS, and checkpoints per-iteration state data and MRBGraph files to HDFS
//! for fault tolerance (§6.1). This crate provides those capabilities on the
//! local filesystem with the same *shape*:
//!
//! * files are split into fixed-size **blocks** (default 4 MiB here vs
//!   Hadoop's 64 MB — scaled with the datasets),
//! * a **namenode** keeps an in-memory manifest (file → block list) that is
//!   also persisted so a "restarted cluster" can recover,
//! * block reads/writes are counted in [`IoStats`] so engines can report
//!   DFS traffic,
//! * **checkpoints** are atomic: written to a temp name then renamed, so a
//!   crash mid-checkpoint never corrupts the previous one.
//!
//! Locality (the JobTracker placing map tasks next to their blocks) is
//! simulated by exposing a deterministic `home_worker` per block; the
//! scheduler in `i2mr-mapred` uses it for assignment decisions.

mod block;
mod checkpoint;
mod namenode;

pub use block::{BlockId, BlockMeta};
pub use checkpoint::CheckpointStore;
pub use namenode::{FileMeta, Namenode};

use i2mr_common::error::{Error, Result};
use i2mr_common::failpoint::{FailSite, FailpointRegistry};
use i2mr_common::metrics::IoStats;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default block size: 4 MiB (HDFS used 64 MB; scaled ~16× down with data).
pub const DEFAULT_BLOCK_SIZE: usize = 4 * 1024 * 1024;

/// Handle to a mini-DFS instance rooted at a local directory.
///
/// Cloning is cheap; all clones share the namenode and I/O counters.
#[derive(Clone)]
pub struct MiniDfs {
    inner: Arc<DfsInner>,
}

struct DfsInner {
    root: PathBuf,
    block_size: usize,
    namenode: Mutex<Namenode>,
    io: Mutex<IoStats>,
    /// Number of simulated worker nodes used for block placement.
    workers: usize,
    /// Chaos-injection sites for the DFS plane ([`FailSite::DfsBlockRead`],
    /// [`FailSite::CheckpointWrite`]); disarmed by default. Behind a mutex
    /// (not a config field) because all clones share one instance and the
    /// chaos suites arm it after the DFS is built.
    failpoints: Mutex<Arc<FailpointRegistry>>,
}

impl MiniDfs {
    /// Create (or reopen) a DFS rooted at `root` with the default block size.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(root, DEFAULT_BLOCK_SIZE, 4)
    }

    /// Create (or reopen) a DFS with explicit block size and worker count.
    pub fn open_with(root: impl AsRef<Path>, block_size: usize, workers: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(Error::config("block_size must be > 0"));
        }
        if workers == 0 {
            return Err(Error::config("workers must be > 0"));
        }
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("blocks"))?;
        std::fs::create_dir_all(root.join("checkpoints"))?;
        let namenode = Namenode::load_or_new(&root)?;
        Ok(MiniDfs {
            inner: Arc::new(DfsInner {
                root,
                block_size,
                namenode: Mutex::new(namenode),
                io: Mutex::new(IoStats::default()),
                workers,
                failpoints: Mutex::new(Arc::new(FailpointRegistry::disarmed())),
            }),
        })
    }

    /// Arm the DFS plane's chaos-injection sites (shared by all clones).
    pub fn set_failpoints(&self, failpoints: Arc<FailpointRegistry>) {
        *self.inner.failpoints.lock() = failpoints;
    }

    pub(crate) fn failpoints(&self) -> Arc<FailpointRegistry> {
        Arc::clone(&self.inner.failpoints.lock())
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    /// Number of simulated worker nodes (for block placement).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Root directory on the host filesystem.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    /// Snapshot of the accumulated I/O counters.
    pub fn io_stats(&self) -> IoStats {
        *self.inner.io.lock()
    }

    /// Reset the I/O counters (used between experiment phases).
    pub fn reset_io_stats(&self) {
        *self.inner.io.lock() = IoStats::default();
    }

    fn block_path(&self, id: BlockId) -> PathBuf {
        self.inner
            .root
            .join("blocks")
            .join(format!("blk_{:016x}", id.0))
    }

    /// Write `data` as DFS file `name`, splitting it into blocks.
    ///
    /// Overwrites any existing file of the same name (old blocks are
    /// garbage-collected).
    pub fn write_file(&self, name: &str, data: &[u8]) -> Result<FileMeta> {
        let mut nn = self.inner.namenode.lock();
        // Free old blocks first so repeated writes do not leak disk.
        if let Some(old) = nn.remove(name) {
            for b in &old.blocks {
                let _ = std::fs::remove_file(self.block_path(b.id));
            }
        }
        let mut blocks = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(self.inner.block_size).collect()
        };
        for (i, chunk) in chunks.into_iter().enumerate() {
            let id = nn.next_block_id();
            let path = self.block_path(id);
            let mut f = std::fs::File::create(&path)?;
            f.write_all(chunk)?;
            self.inner.io.lock().record_write(chunk.len() as u64);
            blocks.push(BlockMeta {
                id,
                len: chunk.len() as u64,
                home_worker: (i + name.len()) % self.inner.workers,
            });
        }
        let meta = FileMeta {
            name: name.to_string(),
            len: data.len() as u64,
            blocks,
        };
        nn.insert(meta.clone());
        nn.persist(&self.inner.root)?;
        Ok(meta)
    }

    /// Read the whole DFS file `name`.
    pub fn read_file(&self, name: &str) -> Result<Vec<u8>> {
        let meta = self
            .stat(name)?
            .ok_or_else(|| Error::NotFound(format!("dfs file {name}")))?;
        let mut out = Vec::with_capacity(meta.len as usize);
        for b in &meta.blocks {
            out.extend_from_slice(&self.read_block(b.id)?);
        }
        Ok(out)
    }

    /// Read a single block's payload.
    pub fn read_block(&self, id: BlockId) -> Result<Vec<u8>> {
        self.failpoints()
            .check(FailSite::DfsBlockRead, "read-block")?;
        let path = self.block_path(id);
        let mut f = std::fs::File::open(&path)
            .map_err(|_| Error::NotFound(format!("block {:016x}", id.0)))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        self.inner.io.lock().record_read(buf.len() as u64);
        Ok(buf)
    }

    /// File metadata, or `None` if the file does not exist.
    pub fn stat(&self, name: &str) -> Result<Option<FileMeta>> {
        Ok(self.inner.namenode.lock().get(name).cloned())
    }

    /// Whether the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.namenode.lock().get(name).is_some()
    }

    /// Delete a DFS file; returns whether it existed.
    pub fn delete(&self, name: &str) -> Result<bool> {
        let mut nn = self.inner.namenode.lock();
        match nn.remove(name) {
            Some(meta) => {
                for b in &meta.blocks {
                    let _ = std::fs::remove_file(self.block_path(b.id));
                }
                nn.persist(&self.inner.root)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// List all files, sorted by name.
    pub fn list(&self) -> Vec<FileMeta> {
        let nn = self.inner.namenode.lock();
        let mut v: Vec<FileMeta> = nn.files().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Atomic-rename checkpoint store rooted inside this DFS.
    pub fn checkpoints(&self) -> CheckpointStore {
        CheckpointStore::new(self.inner.root.join("checkpoints"), self.clone())
    }

    pub(crate) fn record_checkpoint_write(&self, bytes: u64) {
        self.inner.io.lock().record_write(bytes);
    }

    pub(crate) fn record_checkpoint_read(&self, bytes: u64) {
        self.inner.io.lock().record_read(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "i2mr-dfs-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_read_roundtrip_multi_block() {
        let dfs = MiniDfs::open_with(tmpdir("rt"), 8, 4).unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        let meta = dfs.write_file("input/part-0", &data).unwrap();
        assert_eq!(meta.len, 100);
        assert_eq!(meta.blocks.len(), 13); // ceil(100/8)
        assert_eq!(dfs.read_file("input/part-0").unwrap(), data);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let dfs = MiniDfs::open_with(tmpdir("empty"), 8, 2).unwrap();
        let meta = dfs.write_file("empty", &[]).unwrap();
        assert_eq!(meta.blocks.len(), 1);
        assert_eq!(dfs.read_file("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_garbage_collects_old_blocks() {
        let dir = tmpdir("gc");
        let dfs = MiniDfs::open_with(&dir, 4, 2).unwrap();
        dfs.write_file("f", &[0u8; 40]).unwrap();
        let blocks_before = std::fs::read_dir(dir.join("blocks")).unwrap().count();
        assert_eq!(blocks_before, 10);
        dfs.write_file("f", &[1u8; 8]).unwrap();
        let blocks_after = std::fs::read_dir(dir.join("blocks")).unwrap().count();
        assert_eq!(blocks_after, 2);
        assert_eq!(dfs.read_file("f").unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn delete_removes_file_and_blocks() {
        let dir = tmpdir("del");
        let dfs = MiniDfs::open_with(&dir, 4, 2).unwrap();
        dfs.write_file("f", &[7u8; 10]).unwrap();
        assert!(dfs.delete("f").unwrap());
        assert!(!dfs.exists("f"));
        assert!(!dfs.delete("f").unwrap());
        assert_eq!(std::fs::read_dir(dir.join("blocks")).unwrap().count(), 0);
        assert!(matches!(dfs.read_file("f"), Err(Error::NotFound(_))));
    }

    #[test]
    fn manifest_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let dfs = MiniDfs::open_with(&dir, 16, 2).unwrap();
            dfs.write_file("persisted", b"hello world").unwrap();
        }
        let dfs = MiniDfs::open_with(&dir, 16, 2).unwrap();
        assert_eq!(dfs.read_file("persisted").unwrap(), b"hello world");
        let files = dfs.list();
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].name, "persisted");
    }

    #[test]
    fn io_stats_count_reads_and_writes() {
        let dfs = MiniDfs::open_with(tmpdir("io"), 8, 2).unwrap();
        dfs.write_file("f", &[0u8; 20]).unwrap();
        let st = dfs.io_stats();
        assert_eq!(st.writes, 3); // 8+8+4
        assert_eq!(st.bytes_written, 20);
        dfs.read_file("f").unwrap();
        let st = dfs.io_stats();
        assert_eq!(st.reads, 3);
        assert_eq!(st.bytes_read, 20);
        dfs.reset_io_stats();
        assert_eq!(dfs.io_stats(), IoStats::default());
    }

    #[test]
    fn block_placement_is_deterministic_and_bounded() {
        let dfs = MiniDfs::open_with(tmpdir("place"), 4, 3).unwrap();
        let meta = dfs.write_file("g", &[0u8; 20]).unwrap();
        for b in &meta.blocks {
            assert!(b.home_worker < 3);
        }
        // Same file re-written: same placement.
        let meta2 = dfs.write_file("g", &[0u8; 20]).unwrap();
        let homes1: Vec<_> = meta.blocks.iter().map(|b| b.home_worker).collect();
        let homes2: Vec<_> = meta2.blocks.iter().map(|b| b.home_worker).collect();
        assert_eq!(homes1, homes2);
    }

    #[test]
    fn zero_config_rejected() {
        assert!(MiniDfs::open_with(tmpdir("bad1"), 0, 2).is_err());
        assert!(MiniDfs::open_with(tmpdir("bad2"), 8, 0).is_err());
    }

    #[test]
    fn list_is_sorted() {
        let dfs = MiniDfs::open_with(tmpdir("sort"), 64, 2).unwrap();
        dfs.write_file("b", b"1").unwrap();
        dfs.write_file("a", b"2").unwrap();
        dfs.write_file("c", b"3").unwrap();
        let names: Vec<_> = dfs.list().into_iter().map(|f| f.name).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn block_read_failpoint_surfaces_and_is_bounded() {
        use i2mr_common::failpoint::FailAction;
        let dfs = MiniDfs::open_with(tmpdir("fp-read"), 8, 2).unwrap();
        dfs.write_file("f", &[7u8; 20]).unwrap();
        let fp = Arc::new(FailpointRegistry::seeded(11, 1).arm(
            FailSite::DfsBlockRead,
            1.0,
            FailAction::Error,
        ));
        dfs.set_failpoints(Arc::clone(&fp));
        // Budget of one: the first read fails, the retry goes through —
        // the data underneath was never touched.
        let err = dfs.read_file("f").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(fp.fired(), 1);
        assert_eq!(dfs.read_file("f").unwrap(), vec![7u8; 20]);
    }

    #[test]
    fn checkpoint_write_failpoint_leaves_prior_checkpoint_intact() {
        use i2mr_common::failpoint::FailAction;
        let dfs = MiniDfs::open_with(tmpdir("fp-ckpt"), 64, 2).unwrap();
        let ck = dfs.checkpoints();
        ck.save("j", 1, "t", b"good").unwrap();
        dfs.set_failpoints(Arc::new(FailpointRegistry::seeded(5, 1).arm(
            FailSite::CheckpointWrite,
            1.0,
            FailAction::Error,
        )));
        let err = ck.save("j", 2, "t", b"next").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        // The failed save is invisible: iteration 1 remains the latest
        // complete checkpoint and its payload is unchanged.
        assert!(!ck.exists("j", 2, "t"));
        assert_eq!(
            ck.latest_complete_iteration("j", &["t".to_string()]),
            Some(1)
        );
        assert_eq!(ck.load("j", 1, "t").unwrap(), b"good");
        // Budget exhausted: the retried save succeeds.
        ck.save("j", 2, "t", b"next").unwrap();
        assert_eq!(ck.load("j", 2, "t").unwrap(), b"next");
    }
}
