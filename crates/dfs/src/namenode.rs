//! The namenode: file → block-list manifest, persisted for restart recovery.
//!
//! The manifest is serialized with the workspace codec (`i2mr-common`) into
//! `<root>/manifest` via write-temp-then-rename, so a crash mid-persist
//! leaves the previous manifest intact.

use crate::block::{BlockId, BlockMeta};
use i2mr_common::codec::{decode_exact, encode_to, Codec};
use i2mr_common::error::Result;
use std::collections::HashMap;
use std::path::Path;

/// Metadata for one DFS file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// Full DFS path-name (flat namespace with `/` used by convention).
    pub name: String,
    /// Total payload length in bytes.
    pub len: u64,
    /// Ordered block list.
    pub blocks: Vec<BlockMeta>,
}

impl Codec for FileMeta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.len.encode(buf);
        (self.blocks.len() as u64).encode(buf);
        for b in &self.blocks {
            b.id.0.encode(buf);
            b.len.encode(buf);
            (b.home_worker as u64).encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self> {
        let name = String::decode(input)?;
        let len = u64::decode(input)?;
        let n = u64::decode(input)? as usize;
        let mut blocks = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let id = BlockId(u64::decode(input)?);
            let blen = u64::decode(input)?;
            let home_worker = u64::decode(input)? as usize;
            blocks.push(BlockMeta {
                id,
                len: blen,
                home_worker,
            });
        }
        Ok(FileMeta { name, len, blocks })
    }
    fn encoded_len(&self) -> usize {
        self.name.encoded_len()
            + self.len.encoded_len()
            + (self.blocks.len() as u64).encoded_len()
            + self
                .blocks
                .iter()
                .map(|b| {
                    b.id.0.encoded_len()
                        + b.len.encoded_len()
                        + (b.home_worker as u64).encoded_len()
                })
                .sum::<usize>()
    }
}

/// In-memory manifest plus the next-block-id allocator.
pub struct Namenode {
    files: HashMap<String, FileMeta>,
    next_block: u64,
}

impl Namenode {
    /// Load the persisted manifest from `root`, or start empty.
    pub fn load_or_new(root: &Path) -> Result<Self> {
        let path = root.join("manifest");
        if !path.exists() {
            return Ok(Namenode {
                files: HashMap::new(),
                next_block: 0,
            });
        }
        let bytes = std::fs::read(&path)?;
        let (next_block, metas): (u64, Vec<FileMeta>) = decode_exact(&bytes)?;
        let files = metas.into_iter().map(|m| (m.name.clone(), m)).collect();
        Ok(Namenode { files, next_block })
    }

    /// Persist the manifest atomically (temp file + rename).
    pub fn persist(&self, root: &Path) -> Result<()> {
        let mut metas: Vec<FileMeta> = self.files.values().cloned().collect();
        metas.sort_by(|a, b| a.name.cmp(&b.name));
        let bytes = encode_to(&(self.next_block, metas));
        let tmp = root.join("manifest.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, root.join("manifest"))?;
        Ok(())
    }

    /// Allocate a fresh block id.
    pub fn next_block_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        id
    }

    /// Look up a file.
    pub fn get(&self, name: &str) -> Option<&FileMeta> {
        self.files.get(name)
    }

    /// Insert/replace a file entry.
    pub fn insert(&mut self, meta: FileMeta) {
        self.files.insert(meta.name.clone(), meta);
    }

    /// Remove a file entry, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<FileMeta> {
        self.files.remove(name)
    }

    /// Iterate all file entries (unordered).
    pub fn files(&self) -> impl Iterator<Item = &FileMeta> {
        self.files.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "i2mr-nn-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn meta(name: &str, nblocks: u64) -> FileMeta {
        FileMeta {
            name: name.into(),
            len: nblocks * 10,
            blocks: (0..nblocks)
                .map(|i| BlockMeta {
                    id: BlockId(i),
                    len: 10,
                    home_worker: (i % 3) as usize,
                })
                .collect(),
        }
    }

    #[test]
    fn filemeta_codec_roundtrip() {
        let m = meta("a/b/c", 5);
        let enc = encode_to(&m);
        let dec: FileMeta = decode_exact(&enc).unwrap();
        assert_eq!(dec, m);
    }

    #[test]
    fn persist_and_reload_preserves_allocator() {
        let dir = tmpdir("alloc");
        let mut nn = Namenode::load_or_new(&dir).unwrap();
        let b0 = nn.next_block_id();
        let b1 = nn.next_block_id();
        assert_eq!((b0, b1), (BlockId(0), BlockId(1)));
        nn.insert(meta("f", 2));
        nn.persist(&dir).unwrap();

        let mut nn2 = Namenode::load_or_new(&dir).unwrap();
        assert_eq!(
            nn2.next_block_id(),
            BlockId(2),
            "allocator must not reuse ids"
        );
        assert_eq!(nn2.get("f"), Some(&meta("f", 2)));
    }

    #[test]
    fn remove_then_reload_forgets_file() {
        let dir = tmpdir("rm");
        let mut nn = Namenode::load_or_new(&dir).unwrap();
        nn.insert(meta("gone", 1));
        nn.remove("gone");
        nn.persist(&dir).unwrap();
        let nn2 = Namenode::load_or_new(&dir).unwrap();
        assert!(nn2.get("gone").is_none());
    }
}
