//! Atomic checkpoint storage.
//!
//! i2MapReduce checkpoints two artifacts per iteration (paper §6.1): each
//! prime Reduce task's output state data and its MRBGraph file. Recovery
//! reads the latest complete checkpoint. Two properties matter:
//!
//! 1. **Atomicity** — a checkpoint is either fully visible or not at all
//!    (write to `<name>.tmp`, then rename).
//! 2. **Versioning** — checkpoints are keyed by `(job, iteration, task)`;
//!    the latest complete iteration is discoverable.

use crate::MiniDfs;
use i2mr_common::error::{Error, Result};
use i2mr_common::failpoint::FailSite;
use std::io::Write;
use std::path::PathBuf;

/// Atomic, versioned checkpoint store under `<dfs root>/checkpoints`.
pub struct CheckpointStore {
    dir: PathBuf,
    dfs: MiniDfs,
}

impl CheckpointStore {
    pub(crate) fn new(dir: PathBuf, dfs: MiniDfs) -> Self {
        CheckpointStore { dir, dfs }
    }

    fn path(&self, job: &str, iteration: u64, task: &str) -> PathBuf {
        self.dir.join(format!(
            "{}__iter{:06}__{}",
            sanitize(job),
            iteration,
            sanitize(task)
        ))
    }

    /// Atomically write checkpoint payload for `(job, iteration, task)`.
    ///
    /// The tmp file is fsynced before the rename, so a checkpoint that is
    /// visible under its final name is also durable — recovery never picks
    /// a checkpoint whose bytes could still be lost to a crash.
    pub fn save(&self, job: &str, iteration: u64, task: &str, data: &[u8]) -> Result<()> {
        self.dfs
            .failpoints()
            .check(FailSite::CheckpointWrite, "checkpoint-save")?;
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path(job, iteration, task);
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        self.dfs.record_checkpoint_write(data.len() as u64);
        Ok(())
    }

    /// Read checkpoint payload for `(job, iteration, task)`.
    pub fn load(&self, job: &str, iteration: u64, task: &str) -> Result<Vec<u8>> {
        let path = self.path(job, iteration, task);
        let data = std::fs::read(&path).map_err(|_| {
            Error::NotFound(format!("checkpoint {job} iter={iteration} task={task}"))
        })?;
        self.dfs.record_checkpoint_read(data.len() as u64);
        Ok(data)
    }

    /// Whether a checkpoint exists for `(job, iteration, task)`.
    pub fn exists(&self, job: &str, iteration: u64, task: &str) -> bool {
        self.path(job, iteration, task).exists()
    }

    /// Latest iteration for which *all* of `tasks` have a checkpoint under
    /// `job`, or `None` if no complete iteration exists.
    pub fn latest_complete_iteration(&self, job: &str, tasks: &[String]) -> Option<u64> {
        let mut iters: Vec<u64> = Vec::new();
        let prefix = format!("{}__iter", sanitize(job));
        let entries = std::fs::read_dir(&self.dir).ok()?;
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(iter_str) = rest.split("__").next() {
                    if let Ok(i) = iter_str.parse::<u64>() {
                        iters.push(i);
                    }
                }
            }
        }
        iters.sort_unstable();
        iters.dedup();
        iters
            .into_iter()
            .rev()
            .find(|&i| tasks.iter().all(|t| self.exists(job, i, t)))
    }

    /// Delete all checkpoints for `job` older than `keep_from_iteration`.
    pub fn prune(&self, job: &str, keep_from_iteration: u64) -> Result<usize> {
        let prefix = format!("{}__iter", sanitize(job));
        let mut removed = 0;
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if let Some(rest) = name.strip_prefix(&prefix) {
                    if let Some(iter_str) = rest.split("__").next() {
                        if let Ok(i) = iter_str.parse::<u64>() {
                            if i < keep_from_iteration {
                                std::fs::remove_file(e.path())?;
                                removed += 1;
                            }
                        }
                    }
                }
            }
        }
        Ok(removed)
    }
}

/// Replace path-hostile characters so job/task names map to file names.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> CheckpointStore {
        let d = std::env::temp_dir().join(format!(
            "i2mr-ckpt-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        let dfs = MiniDfs::open_with(d.join("dfs"), 1024, 2).unwrap();
        CheckpointStore::new(d.join("ck"), dfs)
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store("rt");
        s.save("pagerank", 3, "reduce-1", b"state-bytes").unwrap();
        assert_eq!(s.load("pagerank", 3, "reduce-1").unwrap(), b"state-bytes");
    }

    #[test]
    fn missing_checkpoint_is_not_found() {
        let s = store("missing");
        assert!(matches!(s.load("j", 0, "t"), Err(Error::NotFound(_))));
        assert!(!s.exists("j", 0, "t"));
    }

    #[test]
    fn latest_complete_iteration_requires_all_tasks() {
        let s = store("latest");
        let tasks = vec!["t0".to_string(), "t1".to_string()];
        assert_eq!(s.latest_complete_iteration("j", &tasks), None);
        s.save("j", 1, "t0", b"a").unwrap();
        s.save("j", 1, "t1", b"b").unwrap();
        s.save("j", 2, "t0", b"c").unwrap(); // t1 missing at iter 2
        assert_eq!(s.latest_complete_iteration("j", &tasks), Some(1));
        s.save("j", 2, "t1", b"d").unwrap();
        assert_eq!(s.latest_complete_iteration("j", &tasks), Some(2));
    }

    #[test]
    fn jobs_are_isolated() {
        let s = store("iso");
        s.save("jobA", 5, "t", b"a").unwrap();
        assert_eq!(
            s.latest_complete_iteration("jobB", &["t".to_string()]),
            None
        );
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let s = store("atomic");
        s.save("j", 1, "t", b"old").unwrap();
        s.save("j", 1, "t", b"new").unwrap();
        assert_eq!(s.load("j", 1, "t").unwrap(), b"new");
    }

    #[test]
    fn prune_removes_only_older_iterations() {
        let s = store("prune");
        for i in 0..5 {
            s.save("j", i, "t", b"x").unwrap();
        }
        let removed = s.prune("j", 3).unwrap();
        assert_eq!(removed, 3);
        assert!(!s.exists("j", 2, "t"));
        assert!(s.exists("j", 3, "t"));
        assert!(s.exists("j", 4, "t"));
    }

    #[test]
    fn hostile_names_are_sanitized() {
        let s = store("hostile");
        s.save("../../etc", 0, "a/b", b"x").unwrap();
        assert_eq!(s.load("../../etc", 0, "a/b").unwrap(), b"x");
    }
}
