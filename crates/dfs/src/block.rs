//! Block identifiers and metadata.

/// Globally unique identifier of one stored block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Metadata the namenode keeps per block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Identifier, also the on-disk name (`blk_<hex id>`).
    pub id: BlockId,
    /// Payload length in bytes (≤ the DFS block size).
    pub len: u64,
    /// Simulated worker node that "hosts" this block. The scheduler prefers
    /// running the map task for a block on its home worker, mirroring the
    /// JobTracker's locality preference (paper §2).
    pub home_worker: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ids_order_like_their_payload() {
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(7), BlockId(7));
    }
}
