//! PageRank (paper Algorithm 2) — one-to-one dependency.
//!
//! Drivers:
//!
//! * [`plainmr`] — vanilla MapReduce, one job per iteration, structure data
//!   (the out-link lists) shuffled every iteration (Algorithm 2 emits
//!   `<i, Ni>` from Map).
//! * [`haloop`] — the HaLoop formulation (Algorithm 5): a reduce-side
//!   structure cache built once, then **two** jobs per iteration (join +
//!   aggregate) — the extra job that makes HaLoop lose to plainMR at this
//!   structure size (Fig. 8 discussion).
//! * [`itermr`] — the iterative engine, no preservation.
//! * [`i2mr_initial`] / [`i2mr_incremental`] — the i2MapReduce pipeline.
//! * [`memflow`] — the Spark-like comparator (§8.7).

use crate::report::EngineRun;
use i2mr_common::error::Result;
use i2mr_common::metrics::JobMetrics;
use i2mr_core::checkpoint::IterCheckpointer;
use i2mr_core::delta::Delta;
use i2mr_core::delta_iter::{DeltaIterativeSpec, DeltaRunReport, UpdateContract};
use i2mr_core::incr_iter::{IncrParams, IncrRunReport};
use i2mr_core::iter_engine::{build_partitioned, PartitionedData};
use i2mr_core::iterative::{DependencyKind, IterParams, IterativeSpec, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_mapred::config::JobConfig;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::pool::WorkerPool;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The PageRank spec for the iterative engines.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor `d` (paper uses the classic 0.85).
    pub damping: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { damping: 0.85 }
    }
}

impl IterativeSpec for PageRank {
    type SK = u64;
    type SV = Vec<u64>;
    type DK = u64;
    type DV = f64;
    type V2 = f64;

    fn project(&self, sk: &u64) -> u64 {
        *sk
    }

    fn map(&self, _sk: &u64, sv: &Vec<u64>, _dk: &u64, dv: &f64, out: &mut Emitter<u64, f64>) {
        if sv.is_empty() {
            return;
        }
        let share = dv / sv.len() as f64;
        for j in sv {
            out.emit(*j, share);
        }
    }

    fn reduce(&self, _dk: &u64, _prev: &f64, values: Values<'_, u64, f64>) -> f64 {
        (1.0 - self.damping) + self.damping * values.iter().sum::<f64>()
    }

    fn init(&self, _dk: &u64) -> f64 {
        1.0
    }

    fn difference(&self, curr: &f64, prev: &f64) -> f64 {
        (curr - prev).abs()
    }

    fn dependency(&self) -> DependencyKind {
        DependencyKind::OneToOne
    }
}

impl DeltaIterativeSpec for PageRank {
    /// Rank mass moves in both directions as edges rewire: a vertex's
    /// share shrinks when its out-degree grows, so prior contributions
    /// must be retracted through the MRBGraph upsert path.
    fn contract(&self) -> UpdateContract {
        UpdateContract::Retractable
    }
}

/// Run PageRank on vanilla MapReduce: Algorithm 2 verbatim, one job per
/// iteration, structure re-shuffled every time.
pub fn plainmr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<u64>)],
    damping: f64,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Vec<(u64, f64)>, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();
    // Map input <i, Ni|Ri>.
    let mut input: Vec<(u64, (Vec<u64>, f64))> =
        graph.iter().map(|(i, n)| (*i, (n.clone(), 1.0))).collect();

    let mapper = move |i: &u64, rec: &(Vec<u64>, f64), out: &mut Emitter<u64, (Vec<u64>, f64)>| {
        let (links, rank) = rec;
        // output <i, Ni> — the structure travels through the shuffle.
        out.emit(*i, (links.clone(), f64::NAN));
        if !links.is_empty() {
            let share = rank / links.len() as f64;
            for j in links {
                // output <j, R_{i,j}>.
                out.emit(*j, (Vec::new(), share));
            }
        }
    };
    let reducer = move |j: &u64,
                        vs: Values<u64, (Vec<u64>, f64)>,
                        out: &mut Emitter<u64, (Vec<u64>, f64)>| {
        let mut links: Vec<u64> = Vec::new();
        let mut sum = 0.0;
        for (l, share) in &vs {
            if share.is_nan() {
                links = l.clone();
            } else {
                sum += share;
            }
        }
        out.emit(*j, (links, (1.0 - damping) + damping * sum));
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let job = MapReduceJob::new(cfg, &mapper, &reducer, &HashPartitioner);
        let run = job.run(pool, &input, iterations)?;
        metrics.merge(&run.metrics);
        let mut next = run.flat_output();
        next.sort_by_key(|(k, _)| *k);
        let max_diff = max_rank_diff(&input, &next);
        input = next;
        if max_diff < epsilon {
            break;
        }
    }

    let ranks: Vec<(u64, f64)> = input.iter().map(|(k, (_, r))| (*k, *r)).collect();
    let run = EngineRun::new("PlainMR recomp", metrics, started.elapsed(), iterations);
    Ok((ranks, run))
}

fn max_rank_diff(a: &[(u64, (Vec<u64>, f64))], b: &[(u64, (Vec<u64>, f64))]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|((_, (_, ra)), (_, (_, rb)))| (ra - rb).abs())
        .fold(0.0, f64::max)
}

/// Run PageRank the HaLoop way (paper Algorithm 5): reduce-side structure
/// cache plus two MapReduce jobs per iteration.
pub fn haloop(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<u64>)],
    damping: f64,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Vec<(u64, f64)>, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();

    // Cache-building pass: ship the structure once into the reduce-side
    // cache (HaLoop's "caching mechanism for the structure data in Reduce
    // Phase 1").
    let identity_map =
        |i: &u64, links: &Vec<u64>, out: &mut Emitter<u64, Vec<u64>>| out.emit(*i, links.clone());
    let identity_red = |i: &u64, vs: Values<u64, Vec<u64>>, out: &mut Emitter<u64, Vec<u64>>| {
        out.emit(*i, vs[0].clone())
    };
    let cache_job = MapReduceJob::new(cfg, &identity_map, &identity_red, &HashPartitioner);
    let structure: Vec<(u64, Vec<u64>)> = graph.to_vec();
    let cache_run = cache_job.run(pool, &structure, 0)?;
    metrics.merge(&cache_run.metrics);
    let cache: Arc<HashMap<u64, Vec<u64>>> =
        Arc::new(cache_run.flat_output().into_iter().collect());

    let mut ranks: Vec<(u64, f64)> = graph.iter().map(|(i, _)| (*i, 1.0)).collect();
    let all_vertices: Vec<u64> = ranks.iter().map(|(k, _)| *k).collect();

    // Job 1 (join): shuffle ranks to their structure, emit contributions.
    let cache1 = Arc::clone(&cache);
    let join_map = |i: &u64, r: &f64, out: &mut Emitter<u64, f64>| out.emit(*i, *r);
    let join_red = move |i: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>| {
        if let Some(links) = cache1.get(i) {
            if !links.is_empty() {
                let share = vs[0] / links.len() as f64;
                for j in links {
                    out.emit(*j, share);
                }
            }
        }
    };
    // Job 2 (aggregate): sum contributions, apply damping.
    let agg_map = |j: &u64, c: &f64, out: &mut Emitter<u64, f64>| out.emit(*j, *c);
    let agg_red = move |j: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>| {
        out.emit(*j, (1.0 - damping) + damping * vs.iter().sum::<f64>());
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let job1 = MapReduceJob::new(cfg, &join_map, &join_red, &HashPartitioner);
        let run1 = job1.run(pool, &ranks, iterations)?;
        metrics.merge(&run1.metrics);
        let contribs = run1.flat_output();

        let job2 = MapReduceJob::new(cfg, &agg_map, &agg_red, &HashPartitioner);
        let run2 = job2.run(pool, &contribs, iterations)?;
        metrics.merge(&run2.metrics);
        let summed: HashMap<u64, f64> = run2.flat_output().into_iter().collect();

        // Vertices with no in-edges received nothing: they settle at 1-d.
        let mut next: Vec<(u64, f64)> = all_vertices
            .iter()
            .map(|v| (*v, summed.get(v).copied().unwrap_or(1.0 - damping)))
            .collect();
        next.sort_by_key(|(k, _)| *k);
        let max_diff = ranks
            .iter()
            .zip(&next)
            .map(|((_, a), (_, b))| (a - b).abs())
            .fold(0.0, f64::max);
        ranks = next;
        if max_diff < epsilon {
            break;
        }
    }

    let run = EngineRun::new("HaLoop recomp", metrics, started.elapsed(), iterations);
    Ok((ranks, run))
}

/// Run PageRank on the iterative engine (the `iterMR` baseline).
pub fn itermr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<u64>)],
    spec: &PageRank,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(PartitionedData<u64, Vec<u64>, u64, f64>, EngineRun)> {
    let started = Instant::now();
    let session = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon,
            preserve: PreserveMode::None,
        })
        .build()?;
    let mut data = build_partitioned(spec, cfg.n_reduce, graph.to_vec());
    let report = session.run_initial(&mut data)?;
    let run = EngineRun::new(
        "IterMR recomp",
        report.total_metrics(),
        started.elapsed(),
        report.n_iterations(),
    );
    Ok((data, run))
}

/// i2MapReduce initial run: converge while preserving the MRBGraph, so an
/// incremental job can continue. Returns the converged data and the stores.
#[allow(clippy::too_many_arguments)]
pub fn i2mr_initial(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<u64>)],
    spec: &PageRank,
    store_dir: &Path,
    store_runtime: StoreRuntimeConfig,
    max_iterations: u64,
    epsilon: f64,
    preserve: PreserveMode,
) -> Result<(
    PartitionedData<u64, Vec<u64>, u64, f64>,
    StoreManager,
    EngineRun,
)> {
    let started = Instant::now();
    let session = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon,
            preserve,
        })
        .store_runtime(store_runtime)
        .store_dir(store_dir)
        .build()?;
    let mut data = build_partitioned(spec, cfg.n_reduce, graph.to_vec());
    let report = session.run_initial(&mut data)?;
    let run = EngineRun::new(
        "i2MR initial",
        report.total_metrics(),
        started.elapsed(),
        report.n_iterations(),
    );
    let stores = session.finish()?.stores.expect("session owns the stores");
    Ok((data, stores, run))
}

/// i2MapReduce incremental refresh from a converged run.
#[allow(clippy::too_many_arguments)]
pub fn i2mr_incremental(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<u64, Vec<u64>, u64, f64>,
    stores: &StoreManager,
    spec: &PageRank,
    delta: &Delta<u64, Vec<u64>>,
    params: IncrParams,
    ckpt: Option<&IterCheckpointer>,
) -> Result<(IncrRunReport, EngineRun)> {
    let started = Instant::now();
    let mut builder = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(params)
        .iter(IterParams {
            epsilon: params.convergence_epsilon,
            max_iterations: params.max_iterations,
            preserve: PreserveMode::None,
        })
        .stores_ref(stores);
    if let Some(ck) = ckpt {
        builder = builder.checkpointer_ref(ck);
    }
    let session = builder.build()?;
    let report = session.run_incremental(data, delta)?;
    let name = match params.filter_threshold {
        Some(_) => "i2MR w/ CPC",
        None => "i2MR w/o CPC",
    };
    let run = EngineRun::new(
        name,
        report.total_metrics(),
        started.elapsed(),
        report.iterations.len() as u64,
    );
    Ok((report, run))
}

/// i2MapReduce refresh on the workset-driven delta-iteration engine:
/// bit-identical results to [`i2mr_incremental`], but only changed keys
/// are scheduled through the data plane.
#[allow(clippy::too_many_arguments)]
pub fn i2mr_delta(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<u64, Vec<u64>, u64, f64>,
    stores: &StoreManager,
    spec: &PageRank,
    delta: &Delta<u64, Vec<u64>>,
    params: IncrParams,
    ckpt: Option<&IterCheckpointer>,
) -> Result<(DeltaRunReport, EngineRun)> {
    let started = Instant::now();
    let mut builder = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(params)
        .iter(IterParams {
            epsilon: params.convergence_epsilon,
            max_iterations: params.max_iterations,
            preserve: PreserveMode::None,
        })
        .stores_ref(stores);
    if let Some(ck) = ckpt {
        builder = builder.checkpointer_ref(ck);
    }
    let session = builder.build()?;
    let report = session.run_delta(data, delta)?;
    let run = EngineRun::new(
        "i2MR delta-iter",
        report.total_metrics(),
        started.elapsed(),
        report.iterations.len() as u64,
    );
    Ok((report, run))
}

/// Run PageRank on the memflow (Spark-like) comparator (§8.7).
pub fn memflow(
    ctx: &i2mr_memflow::MemFlowCtx,
    graph: &[(u64, Vec<u64>)],
    n_partitions: usize,
    damping: f64,
    iterations: u64,
) -> Result<(Vec<(u64, f64)>, EngineRun)> {
    let started = Instant::now();
    let links = i2mr_memflow::Dataset::from_vec(ctx, n_partitions, graph.to_vec())?;
    let mut ranks = links.map_values(|_, _| 1.0f64)?;
    for _ in 0..iterations {
        let contribs = links
            .join(&ranks)?
            .flat_map(n_partitions, |_, (outs, rank)| {
                if outs.is_empty() {
                    Vec::new()
                } else {
                    let share = rank / outs.len() as f64;
                    outs.iter().map(|&o| (o, share)).collect()
                }
            })?;
        ranks = contribs
            .reduce_by_key(|a, b| a + b)?
            .map_values(|_, sum| (1.0 - damping) + damping * sum)?;
    }
    let mut out = ranks.collect()?;
    out.sort_by_key(|(k, _)| *k);
    // Translate spill activity into the shared metrics vocabulary.
    let fm = ctx.metrics();
    let metrics = JobMetrics {
        jobs_started: 1, // Spark runs one driver program
        shuffled_bytes: fm.spill_bytes + fm.load_bytes,
        ..Default::default()
    };
    let run = EngineRun::new("Spark (memflow)", metrics, started.elapsed(), iterations);
    Ok((out, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_datagen::graph::GraphGen;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "i2mr-pr-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn graph() -> Vec<(u64, Vec<u64>)> {
        GraphGen::new(120, 700, 42).generate()
    }

    fn assert_ranks_close(a: &[(u64, f64)], b: &[(u64, f64)], tol: f64) {
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            assert!((va - vb).abs() < tol, "vertex {ka}: {va} vs {vb}");
        }
    }

    #[test]
    fn all_engines_agree_on_converged_ranks() {
        let g = graph();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let spec = PageRank::default();

        let (plain, plain_run) = plainmr(&pool, &cfg, &g, 0.85, 100, 1e-10).unwrap();
        let (hal, hal_run) = haloop(&pool, &cfg, &g, 0.85, 100, 1e-10).unwrap();
        let (iter_data, iter_run) = itermr(&pool, &cfg, &g, &spec, 100, 1e-10).unwrap();
        let (i2_data, _stores, _) = i2mr_initial(
            &pool,
            &cfg,
            &g,
            &spec,
            &tmp("agree"),
            Default::default(),
            100,
            1e-10,
            PreserveMode::FinalOnly,
        )
        .unwrap();

        let iter_ranks = iter_data.state_snapshot();
        assert_ranks_close(&plain, &iter_ranks, 1e-6);
        assert_ranks_close(&hal, &iter_ranks, 1e-6);
        assert_ranks_close(&i2_data.state_snapshot(), &iter_ranks, 1e-9);

        // Job accounting: plainMR one job per iteration, HaLoop two (plus
        // the cache build), iterMR exactly one overall.
        assert_eq!(plain_run.metrics.jobs_started, plain_run.iterations);
        assert_eq!(hal_run.metrics.jobs_started, 2 * hal_run.iterations + 1);
        assert_eq!(iter_run.metrics.jobs_started, 1);

        // Structure caching: iterMR shuffles strictly fewer bytes than
        // plainMR (the margin grows with structure size; the paper inflates
        // ClueWeb node ids to long strings, the Fig. 9 bench does the same).
        assert!(iter_run.metrics.shuffled_bytes < plain_run.metrics.shuffled_bytes);
    }

    #[test]
    fn memflow_matches_itermr_on_fixed_iterations() {
        // Ring: every vertex has an in-edge, so the Spark-style "vertices
        // without contributions drop out" subtlety does not bite.
        let g: Vec<(u64, Vec<u64>)> = (0..50u64).map(|i| (i, vec![(i + 1) % 50])).collect();
        let ctx = i2mr_memflow::MemFlowCtx::new(usize::MAX >> 1, tmp("mf")).unwrap();
        let (mf, _) = memflow(&ctx, &g, 3, 0.85, 30).unwrap();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let (data, _) = itermr(&pool, &cfg, &g, &PageRank::default(), 30, 0.0).unwrap();
        assert_ranks_close(&mf, &data.state_snapshot(), 1e-9);
    }

    #[test]
    fn incremental_refresh_matches_recompute() {
        let g = graph();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let spec = PageRank::default();
        let (mut data, stores, _) = i2mr_initial(
            &pool,
            &cfg,
            &g,
            &spec,
            &tmp("incr"),
            Default::default(),
            200,
            1e-11,
            PreserveMode::FinalOnly,
        )
        .unwrap();

        let delta = i2mr_datagen::delta::graph_delta(
            &g,
            i2mr_datagen::delta::DeltaSpec {
                change_fraction: 0.05,
                ..Default::default()
            },
        );
        let (report, run) = i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                max_iterations: 400,
                convergence_epsilon: 1e-9,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(report.converged);
        assert_eq!(run.name, "i2MR w/o CPC");

        let updated = delta.apply_to(&g);
        let (want, _) = itermr(&pool, &cfg, &updated, &spec, 400, 1e-11).unwrap();
        assert_ranks_close(&data.state_snapshot(), &want.state_snapshot(), 1e-4);
    }

    #[test]
    fn delta_refresh_is_bitwise_identical_to_incremental() {
        let g = graph();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let spec = PageRank::default();
        let init = |tag: &str| {
            i2mr_initial(
                &pool,
                &cfg,
                &g,
                &spec,
                &tmp(tag),
                Default::default(),
                200,
                1e-11,
                PreserveMode::FinalOnly,
            )
            .unwrap()
        };
        let (mut data_full, st_full, _) = init("dfull");
        let (mut data_delta, st_delta, _) = init("ddelta");

        let delta = i2mr_datagen::delta::graph_delta(
            &g,
            i2mr_datagen::delta::DeltaSpec {
                change_fraction: 0.02,
                ..Default::default()
            },
        );
        let params = IncrParams {
            max_iterations: 400,
            convergence_epsilon: 1e-9,
            ..Default::default()
        };
        let (full_rep, _) = i2mr_incremental(
            &pool,
            &cfg,
            &mut data_full,
            &st_full,
            &spec,
            &delta,
            params,
            None,
        )
        .unwrap();
        let (delta_rep, run) = i2mr_delta(
            &pool,
            &cfg,
            &mut data_delta,
            &st_delta,
            &spec,
            &delta,
            params,
            None,
        )
        .unwrap();
        assert!(full_rep.converged && delta_rep.converged);
        assert_eq!(run.name, "i2MR delta-iter");
        assert_eq!(data_full.state, data_delta.state, "state diverged");
        for p in 0..cfg.n_reduce {
            assert_eq!(
                st_full.export(p).unwrap(),
                st_delta.export(p).unwrap(),
                "shard {p} export diverged"
            );
        }
    }
}
