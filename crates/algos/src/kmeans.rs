//! Kmeans (paper Algorithm 3) — all-to-one dependency.
//!
//! Every map instance needs the full centroid set, so the state is one
//! small kv-pair replicated to all partitions (paper §4.3). Any input
//! change moves centroids, which changes the state value that *every* map
//! instance depends on: P∆ = 100 %, so MRBGraph maintenance is turned off
//! and i2MapReduce "falls back to iterMR recomp" (paper §8.2, Fig. 8) —
//! still winning over plainMR through structure caching and job reuse, and
//! over cold re-clustering by starting from the converged centroids.

use crate::report::EngineRun;
use i2mr_common::error::Result;
use i2mr_common::metrics::JobMetrics;
use i2mr_core::delta::Delta;
use i2mr_core::iter_engine::{build_small_state, SmallStateData, SmallStateIterEngine};
use i2mr_core::iterative::{IterParams, PreserveMode, SmallStateSpec};
use i2mr_mapred::config::JobConfig;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::pool::WorkerPool;
use i2mr_mapred::types::{Emitter, Values};
use std::sync::Arc;
use std::time::Instant;

/// The centroid set: `(cid, coordinates)`.
pub type Centroids = Vec<(u32, Vec<f64>)>;

/// Kmeans spec for the small-state iterative engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Kmeans;

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest centroid.
pub fn nearest(centroids: &Centroids, p: &[f64]) -> u32 {
    centroids
        .iter()
        .min_by(|a, b| {
            dist2(&a.1, p)
                .partial_cmp(&dist2(&b.1, p))
                .expect("no NaN coordinates")
        })
        .expect("at least one centroid")
        .0
}

impl SmallStateSpec for Kmeans {
    type SK = u64;
    type SV = Vec<f64>;
    type State = Centroids;
    type K2 = u32;
    type V2 = (Vec<f64>, u64); // (coordinate sums, count)

    fn map(
        &self,
        _sk: &u64,
        p: &Vec<f64>,
        state: &Centroids,
        out: &mut Emitter<u32, (Vec<f64>, u64)>,
    ) {
        out.emit(nearest(state, p), (p.clone(), 1));
    }

    fn reduce(&self, _k2: &u32, values: Values<'_, u32, (Vec<f64>, u64)>) -> (Vec<f64>, u64) {
        let dims = values[0].0.len();
        let mut sum = vec![0.0; dims];
        let mut count = 0u64;
        for (s, c) in &values {
            for (acc, x) in sum.iter_mut().zip(s) {
                *acc += x;
            }
            count += c;
        }
        (sum, count)
    }

    fn assemble(&self, prev: &Centroids, parts: &[(u32, (Vec<f64>, u64))]) -> Centroids {
        let mut next = prev.clone();
        for (cid, (sum, count)) in parts {
            if *count == 0 {
                continue;
            }
            if let Some(c) = next.iter_mut().find(|(id, _)| id == cid) {
                c.1 = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        next
    }

    fn difference(&self, curr: &Centroids, prev: &Centroids) -> f64 {
        curr.iter()
            .zip(prev)
            .map(|((_, a), (_, b))| dist2(a, b).sqrt())
            .fold(0.0, f64::max)
    }
}

/// Kmeans on vanilla MapReduce: one job per iteration, all points shuffled
/// every iteration (Algorithm 3's `<cid, pval>` intermediate pairs).
pub fn plainmr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    points: &[(u64, Vec<f64>)],
    initial: Centroids,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Centroids, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();
    let spec = Kmeans;
    let mut centroids = initial;
    let mut iterations = 0;

    for _ in 0..max_iterations {
        iterations += 1;
        let current = Arc::new(centroids.clone());
        let mapper = {
            let current = Arc::clone(&current);
            move |_pid: &u64, p: &Vec<f64>, out: &mut Emitter<u32, (Vec<f64>, u64)>| {
                out.emit(nearest(&current, p), (p.clone(), 1));
            }
        };
        let reducer = |cid: &u32,
                       vs: Values<u32, (Vec<f64>, u64)>,
                       out: &mut Emitter<u32, (Vec<f64>, u64)>| {
            out.emit(*cid, Kmeans.reduce(cid, vs));
        };
        let job = MapReduceJob::new(cfg, &mapper, &reducer, &HashPartitioner);
        let run = job.run(pool, points, iterations)?;
        metrics.merge(&run.metrics);
        let parts: Vec<(u32, (Vec<f64>, u64))> = run.flat_output();
        let next = spec.assemble(&centroids, &parts);
        let diff = spec.difference(&next, &centroids);
        centroids = next;
        if diff < epsilon {
            break;
        }
    }
    Ok((
        centroids,
        EngineRun::new("PlainMR recomp", metrics, started.elapsed(), iterations),
    ))
}

/// Kmeans on the small-state iterative engine (iterMR): points partitioned
/// once, centroid set replicated, one job overall.
pub fn itermr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    points: &[(u64, Vec<f64>)],
    initial: Centroids,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(SmallStateData<u64, Vec<f64>, Centroids>, EngineRun)> {
    let started = Instant::now();
    let spec = Kmeans;
    let engine = SmallStateIterEngine::new(
        &spec,
        cfg.clone(),
        IterParams {
            max_iterations,
            epsilon,
            preserve: PreserveMode::None,
        },
    )?;
    let mut data = build_small_state::<Kmeans>(cfg.n_reduce, points.to_vec(), initial);
    let report = engine.run(pool, &mut data)?;
    Ok((
        data,
        EngineRun::new(
            "IterMR recomp",
            report.total_metrics(),
            started.elapsed(),
            report.n_iterations(),
        ),
    ))
}

/// HaLoop-style Kmeans: structure cached like iterMR, but a fresh MapReduce
/// job is scheduled per iteration (HaLoop reuses caches, not jobs). The
/// paper finds HaLoop ≈ iterMR here (Fig. 8): same data movement, the only
/// difference is per-iteration job startup.
pub fn haloop(
    pool: &WorkerPool,
    cfg: &JobConfig,
    points: &[(u64, Vec<f64>)],
    initial: Centroids,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Centroids, EngineRun)> {
    let (data, mut run) = itermr(pool, cfg, points, initial, max_iterations, epsilon)?;
    run.name = "HaLoop recomp".into();
    // One job launch per iteration instead of one overall.
    run.metrics.jobs_started = run.iterations;
    Ok((data.state, run))
}

/// i2MapReduce incremental Kmeans: apply the point delta, then re-iterate
/// from the previous converged centroids with MRBGraph off (P∆ = 100 %).
pub fn i2mr_incremental(
    pool: &WorkerPool,
    cfg: &JobConfig,
    points: &[(u64, Vec<f64>)],
    converged: Centroids,
    delta: &Delta<u64, Vec<f64>>,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Centroids, EngineRun)> {
    let updated = delta.apply_to(points);
    let (data, mut run) = itermr(pool, cfg, &updated, converged, max_iterations, epsilon)?;
    run.name = "i2MR (MRBG off)".into();
    Ok((data.state, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_datagen::points::PointsGen;

    fn centroids_close(a: &Centroids, b: &Centroids, tol: f64) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|((ia, ca), (ib, cb))| ia == ib && dist2(ca, cb).sqrt() < tol)
    }

    #[test]
    fn plainmr_and_itermr_agree() {
        let gen = PointsGen::new(400, 4, 4, 77);
        let points = gen.all();
        let init = gen.initial_centroids(4);
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);

        let (plain, plain_run) = plainmr(&pool, &cfg, &points, init.clone(), 50, 1e-9).unwrap();
        let (iter_data, iter_run) = itermr(&pool, &cfg, &points, init, 50, 1e-9).unwrap();
        assert!(centroids_close(&plain, &iter_data.state, 1e-6));
        assert_eq!(iter_run.metrics.jobs_started, 1);
        assert_eq!(plain_run.metrics.jobs_started, plain_run.iterations);
    }

    #[test]
    fn converged_centroids_sit_on_cluster_means() {
        let gen = PointsGen::new(600, 3, 3, 5);
        let points = gen.all();
        // Start near the true centers so label assignment is stable.
        let init: Centroids = gen
            .true_centers()
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                c[0] += 0.3;
                (i as u32, c)
            })
            .collect();
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (data, _) = itermr(&pool, &cfg, &points, init, 60, 1e-10).unwrap();
        for (cid, c) in &data.state {
            let truth = &gen.true_centers()[*cid as usize];
            assert!(dist2(c, truth).sqrt() < 1.0, "centroid {cid} drifted");
        }
    }

    #[test]
    fn incremental_matches_recompute_from_scratch_clusters() {
        let gen = PointsGen::new(500, 3, 4, 21);
        let points = gen.all();
        let init = gen.initial_centroids(4);
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let (data, _) = itermr(&pool, &cfg, &points, init.clone(), 80, 1e-10).unwrap();

        let delta = i2mr_datagen::delta::points_delta(
            &points,
            i2mr_datagen::delta::DeltaSpec::ten_percent(3),
        );
        let (incr, incr_run) =
            i2mr_incremental(&pool, &cfg, &points, data.state.clone(), &delta, 80, 1e-10).unwrap();

        // Kmeans is non-convex: warm and cold starts may settle in
        // different (equally valid) local optima, so compare quality, not
        // coordinates. The incremental result must (a) be a fixed point of
        // the updated data and (b) cluster it about as well as a cold rerun.
        let updated = delta.apply_to(&points);
        let (refine, _) = itermr(&pool, &cfg, &updated, incr.clone(), 2, 1e-12).unwrap();
        assert!(
            Kmeans.difference(&refine.state, &incr) < 1e-6,
            "incremental result is not a fixed point"
        );
        let (oracle, oracle_run) = itermr(&pool, &cfg, &updated, init, 200, 1e-10).unwrap();
        let cost_incr = clustering_cost(&updated, &incr);
        let cost_oracle = clustering_cost(&updated, &oracle.state);
        assert!(
            cost_incr <= cost_oracle * 1.1,
            "incremental cost {cost_incr} vs oracle {cost_oracle}"
        );
        // Warm start converges in fewer iterations than cold start.
        assert!(incr_run.iterations <= oracle_run.iterations);
    }

    /// Sum of squared distances to the nearest centroid.
    fn clustering_cost(points: &[(u64, Vec<f64>)], centroids: &Centroids) -> f64 {
        points
            .iter()
            .map(|(_, p)| {
                centroids
                    .iter()
                    .map(|(_, c)| dist2(c, p))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }

    #[test]
    fn haloop_charges_a_job_per_iteration() {
        let gen = PointsGen::new(200, 2, 2, 9);
        let points = gen.all();
        let init = gen.initial_centroids(2);
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (_, run) = haloop(&pool, &cfg, &points, init, 30, 1e-9).unwrap();
        assert_eq!(run.metrics.jobs_started, run.iterations);
    }
}
