//! Uniform driver reports consumed by the benchmark harness.

use i2mr_common::costmodel::ClusterCostModel;
use i2mr_common::metrics::JobMetrics;
use std::time::Duration;

/// The outcome of running one engine on one workload.
#[derive(Clone, Debug, Default)]
pub struct EngineRun {
    /// Engine label as used in the paper's figures (e.g. "PlainMR recomp").
    pub name: String,
    /// Aggregated engine metrics across all jobs/iterations.
    pub metrics: JobMetrics,
    /// Measured wall time of the whole computation.
    pub wall: Duration,
    /// Number of iterations executed (0 for one-step jobs).
    pub iterations: u64,
}

impl EngineRun {
    /// Assemble a report.
    pub fn new(
        name: impl Into<String>,
        metrics: JobMetrics,
        wall: Duration,
        iterations: u64,
    ) -> Self {
        EngineRun {
            name: name.into(),
            metrics,
            wall,
            iterations,
        }
    }

    /// Modeled cluster runtime: measured wall + the additive cost model
    /// (job startups + shuffle bytes + job-input reads). See
    /// `i2mr-common::costmodel`.
    pub fn modeled(&self, model: &ClusterCostModel) -> Duration {
        self.wall
            + model.startup_cost(self.metrics.jobs_started)
            + model.shuffle_cost(self.metrics.shuffled_bytes)
            + model.input_read_cost(self.metrics.dfs_io.bytes_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_adds_startup_and_shuffle() {
        let m = JobMetrics {
            jobs_started: 10,
            shuffled_bytes: 64 * 1024 * 1024,
            ..Default::default()
        };
        let run = EngineRun::new("x", m, Duration::from_millis(100), 5);
        let model = ClusterCostModel {
            job_startup: Duration::from_millis(10),
            disk_bytes_per_sec: u64::MAX,
            network_bytes_per_sec: 64 * 1024 * 1024,
        };
        let want = Duration::from_millis(100 + 100 + 1000);
        assert_eq!(run.modeled(&model), want);
    }
}
