//! APriori frequent word-pair mining — the one-step application (§8.1.3).
//!
//! "After generating the candidate list of frequent word pairs in a
//! preprocessing job, APriori runs a MapReduce job to count the frequency
//! of each word pair. The Map task loads this list into memory … Finally,
//! the Reduce task aggregates the local counts into the global frequency
//! for each pair. Note that APriori satisfies the requirements in §3.5.
//! Hence, we employ the accumulator Reduce optimization."
//!
//! Drivers: plain re-computation (vanilla job over the whole corpus),
//! i2MapReduce incremental with accumulator Reduce (counts folded with
//! integer sum over an insertion-only delta), and the task-level
//! (Incoop-style) baseline for the grain ablation.

use crate::report::EngineRun;
use i2mr_common::error::Result;
use i2mr_core::accumulator::AccumulatorEngine;
use i2mr_core::delta::Delta;
use i2mr_core::tasklevel::TaskLevelEngine;
use i2mr_mapred::config::JobConfig;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::pool::WorkerPool;
use i2mr_mapred::types::{Emitter, Values};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// The candidate pair list, shared read-only by all map tasks.
#[derive(Clone, Debug)]
pub struct Candidates {
    pairs: Arc<HashSet<(String, String)>>,
}

impl Candidates {
    /// Candidate pairs = all ordered pairs of the `k` most frequent words
    /// (the classic APriori step-2 candidate generation; the preprocessing
    /// job of the paper).
    pub fn generate(corpus: &[(u64, String)], top_k: usize) -> Self {
        let gen = i2mr_datagen::text::TweetGen::new(1, 0); // only for top_words
        let top = gen.top_words(corpus, top_k);
        let mut pairs = HashSet::new();
        for (a_idx, a) in top.iter().enumerate() {
            for b in top.iter().skip(a_idx + 1) {
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                pairs.insert((x.clone(), y.clone()));
            }
        }
        Candidates {
            pairs: Arc::new(pairs),
        }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Candidate pairs occurring in one tweet.
    pub fn pairs_in(&self, text: &str) -> Vec<(String, String)> {
        let words: Vec<&str> = {
            let mut w: Vec<&str> = text.split_whitespace().collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        let mut found = Vec::new();
        for (i, a) in words.iter().enumerate() {
            for b in &words[i + 1..] {
                let key = (a.to_string(), b.to_string());
                if self.pairs.contains(&key) {
                    found.push(key);
                }
            }
        }
        found
    }
}

/// The APriori pair-counting mapper.
fn pair_mapper(
    candidates: &Candidates,
) -> impl Fn(&u64, &String, &mut Emitter<(String, String), u64>) + '_ {
    move |_id: &u64, text: &String, out: &mut Emitter<(String, String), u64>| {
        for pair in candidates.pairs_in(text) {
            out.emit(pair, 1);
        }
    }
}

/// Count candidate pairs by re-running the whole job on vanilla MapReduce.
pub fn plainmr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    corpus: &[(u64, String)],
    candidates: &Candidates,
) -> Result<(Vec<((String, String), u64)>, EngineRun)> {
    let started = Instant::now();
    let mapper = pair_mapper(candidates);
    let reducer = |k: &(String, String),
                   vs: Values<(String, String), u64>,
                   out: &mut Emitter<(String, String), u64>| {
        out.emit(k.clone(), vs.iter().sum());
    };
    let job = MapReduceJob::new(cfg, &mapper, &reducer, &HashPartitioner);
    let run = job.run(pool, corpus, 0)?;
    let metrics = run.metrics.clone();
    let mut out = run.flat_output();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok((
        out,
        EngineRun::new("PlainMR recomp", metrics, started.elapsed(), 0),
    ))
}

/// i2MapReduce APriori engine: accumulator Reduce over pair counts.
pub struct AprioriEngine {
    engine: AccumulatorEngine<u64, String, (String, String), u64>,
    candidates: Candidates,
}

impl AprioriEngine {
    /// Build the engine with a fixed candidate list.
    pub fn new(cfg: JobConfig, candidates: Candidates) -> Result<Self> {
        Ok(AprioriEngine {
            engine: AccumulatorEngine::create(cfg)?,
            candidates,
        })
    }

    /// Initial count over the full corpus.
    pub fn initial(&mut self, pool: &WorkerPool, corpus: &[(u64, String)]) -> Result<EngineRun> {
        let started = Instant::now();
        let mapper = pair_mapper(&self.candidates);
        let metrics = self.engine.initial(
            pool,
            corpus,
            &mapper,
            &HashPartitioner,
            &|a: &u64, b: &u64| a + b,
        )?;
        Ok(EngineRun::new(
            "i2MR initial",
            metrics,
            started.elapsed(),
            0,
        ))
    }

    /// Incremental refresh over the newly arrived tweets (insertion-only).
    pub fn incremental(
        &mut self,
        pool: &WorkerPool,
        delta: &Delta<u64, String>,
    ) -> Result<EngineRun> {
        let started = Instant::now();
        let mapper = pair_mapper(&self.candidates);
        let metrics = self.engine.incremental(
            pool,
            delta,
            &mapper,
            &HashPartitioner,
            &|a: &u64, b: &u64| a + b,
        )?;
        Ok(EngineRun::new(
            "i2MR incremental",
            metrics,
            started.elapsed(),
            0,
        ))
    }

    /// Current pair counts, sorted.
    pub fn counts(&self) -> Vec<((String, String), u64)> {
        self.engine.output()
    }
}

/// Task-level (Incoop-style) APriori: memoized map/reduce tasks over the
/// *complete* corpus. Returns counts, the run report, and reuse statistics.
pub fn tasklevel(
    engine: &mut TaskLevelEngine<u64, String, (String, String), u64, (String, String), u64>,
    pool: &WorkerPool,
    corpus: &[(u64, String)],
    candidates: &Candidates,
) -> Result<(Vec<((String, String), u64)>, EngineRun)> {
    let started = Instant::now();
    let mapper = pair_mapper(candidates);
    let reducer = |k: &(String, String),
                   vs: Values<(String, String), u64>,
                   out: &mut Emitter<(String, String), u64>| {
        out.emit(k.clone(), vs.iter().sum());
    };
    let (out, metrics) = engine.run(pool, corpus, &mapper, &HashPartitioner, &reducer)?;
    Ok((
        out,
        EngineRun::new("Task-level (Incoop-style)", metrics, started.elapsed(), 0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_datagen::delta::tweets_append;
    use i2mr_datagen::text::TweetGen;

    #[test]
    fn candidates_are_symmetric_and_ordered() {
        let corpus = vec![
            (0u64, "a b c".to_string()),
            (1, "a b".to_string()),
            (2, "a".to_string()),
        ];
        let c = Candidates::generate(&corpus, 3);
        assert_eq!(c.len(), 3); // (a,b), (a,c), (b,c)
        let found = c.pairs_in("c b a");
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|(x, y)| x < y));
    }

    #[test]
    fn incremental_counts_match_plain_recompute() {
        let gen = TweetGen::new(300, 99);
        let corpus = gen.generate(0, 800);
        let candidates = Candidates::generate(&corpus, 12);
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);

        let mut engine = AprioriEngine::new(cfg.clone(), candidates.clone()).unwrap();
        engine.initial(&pool, &corpus).unwrap();

        // The paper's 7.9 % append-only delta.
        let delta = tweets_append(&gen, 800, 0.079);
        let incr_run = engine.incremental(&pool, &delta).unwrap();

        let full = delta.apply_to(&corpus);
        let (want, plain_run) = plainmr(&pool, &cfg, &full, &candidates).unwrap();
        assert_eq!(engine.counts(), want);

        // Fine-grain incremental maps only the delta.
        assert_eq!(incr_run.metrics.map_invocations, delta.len() as u64);
        assert!(plain_run.metrics.map_invocations > 10 * incr_run.metrics.map_invocations);
    }

    #[test]
    fn tasklevel_matches_but_reuses_nothing_on_scattered_appends() {
        let gen = TweetGen::new(200, 5);
        let corpus = gen.generate(0, 400);
        let candidates = Candidates::generate(&corpus, 8);
        let cfg = JobConfig {
            n_map: 8,
            n_reduce: 4,
            ..Default::default()
        };
        let pool = WorkerPool::new(4);
        let mut engine = TaskLevelEngine::new(cfg.clone()).unwrap();
        tasklevel(&mut engine, &pool, &corpus, &candidates).unwrap();

        // Appending shifts the contiguous splits: every split after the
        // first change point is dirtied (the paper's observation about
        // task-level granularity without careful partitioning).
        let delta = tweets_append(&gen, 400, 0.079);
        let full = delta.apply_to(&corpus);
        let (out, _) = tasklevel(&mut engine, &pool, &full, &candidates).unwrap();
        let (want, _) = plainmr(&pool, &cfg, &full, &candidates).unwrap();
        assert_eq!(out, want);
    }

    #[test]
    fn deletion_delta_is_rejected_by_accumulator_path() {
        let corpus = vec![(0u64, "a b".to_string())];
        let candidates = Candidates::generate(&corpus, 2);
        let mut engine = AprioriEngine::new(JobConfig::symmetric(2), candidates).unwrap();
        let pool = WorkerPool::new(2);
        engine.initial(&pool, &corpus).unwrap();
        let mut delta = Delta::new();
        delta.delete(0, "a b".to_string());
        assert!(engine.incremental(&pool, &delta).is_err());
    }
}
