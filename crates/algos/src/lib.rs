//! Evaluation applications and baseline drivers (paper §8.1.3).
//!
//! Every algorithm the paper evaluates, each with drivers for every
//! competing engine so the benchmark harness can regenerate the paper's
//! comparisons:
//!
//! | algorithm | dependency | drivers |
//! |---|---|---|
//! | [`pagerank`] | one-to-one | plainMR, HaLoop (2 jobs/iter), iterMR, i2MR (±CPC), memflow |
//! | [`sssp`] | one-to-one | plainMR, iterMR, i2MR (FT = 0 exact) |
//! | [`kmeans`] | all-to-one | plainMR, HaLoop-style, iterMR, i2MR (MRBG off) |
//! | [`gimv`] | many-to-one | plainMR (2 jobs/iter), iterMR (1 job/iter), i2MR |
//! | [`apriori`] | one-step | plainMR recompute, i2MR accumulator, task-level (Incoop-style) |
//!
//! Drivers return [`report::EngineRun`] values: total metrics plus wall
//! time, which the bench harness feeds through the cluster cost model.

pub mod apriori;
pub mod gimv;
pub mod kmeans;
pub mod pagerank;
pub mod report;
pub mod sssp;

pub use report::EngineRun;
