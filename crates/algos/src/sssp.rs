//! Single-Source Shortest Paths — one-to-one dependency (paper §8.1.3).
//!
//! Bellman-Ford-style iteration: each vertex's distance is the minimum of
//! its in-neighbors' distances plus edge weights. "We set the filter
//! threshold to 0 in the change propagation control … Therefore, unlike
//! PageRank, the SSSP results with CPC are precise" (§8.2).
//!
//! Incremental deltas are restricted to weight *decreases* and edge
//! insertions (see `i2mr-datagen::delta::weighted_graph_delta`): min-plus
//! iteration from a converged state refreshes those exactly, while edge
//! deletions would require distance re-initialization (a known limitation
//! of monotone incremental shortest paths, documented in DESIGN.md).

use crate::report::EngineRun;
use i2mr_common::error::Result;
use i2mr_common::metrics::JobMetrics;
use i2mr_core::delta::Delta;
use i2mr_core::delta_iter::{DeltaIterativeSpec, DeltaRunReport, UpdateContract};
use i2mr_core::incr_iter::{IncrParams, IncrRunReport};
use i2mr_core::iter_engine::{build_partitioned, PartitionedData};
use i2mr_core::iterative::{DependencyKind, IterParams, IterativeSpec, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_mapred::config::JobConfig;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::pool::WorkerPool;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use std::path::Path;
use std::time::Instant;

/// SSSP spec: distances from `source` over weighted out-edges.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// The source vertex (distance 0).
    pub source: u64,
}

impl IterativeSpec for Sssp {
    type SK = u64;
    type SV = Vec<(u64, f64)>;
    type DK = u64;
    type DV = f64;
    type V2 = f64;

    fn project(&self, sk: &u64) -> u64 {
        *sk
    }

    fn map(
        &self,
        _sk: &u64,
        sv: &Vec<(u64, f64)>,
        _dk: &u64,
        dv: &f64,
        out: &mut Emitter<u64, f64>,
    ) {
        if dv.is_finite() {
            for (j, w) in sv {
                out.emit(*j, dv + w);
            }
        }
    }

    fn reduce(&self, dk: &u64, _prev: &f64, values: Values<'_, u64, f64>) -> f64 {
        let best = values.iter().copied().fold(f64::INFINITY, f64::min);
        if *dk == self.source {
            0.0
        } else {
            best
        }
    }

    fn init(&self, dk: &u64) -> f64 {
        if *dk == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn difference(&self, curr: &f64, prev: &f64) -> f64 {
        match (curr.is_finite(), prev.is_finite()) {
            (true, true) => (curr - prev).abs(),
            (false, false) => 0.0,
            _ => f64::INFINITY,
        }
    }

    fn dependency(&self) -> DependencyKind {
        DependencyKind::OneToOne
    }
}

impl DeltaIterativeSpec for Sssp {
    /// Min-plus relaxation from a converged state with improvement-only
    /// deltas (weight decreases / edge insertions) only ever shortens
    /// distances: an emitted distance never needs to be retracted.
    fn contract(&self) -> UpdateContract {
        UpdateContract::Monotonic
    }

    /// A successor distance is admissible when it does not regress: it
    /// improves, ties, or resolves a previously unreachable vertex.
    fn admissible(&self, candidate: &f64, prev: &f64) -> bool {
        !prev.is_finite() || candidate <= prev
    }
}

/// Tagged shuffle value for the plainMR formulation (<j, {dist, Nj}>).
type PlainRec = (Vec<(u64, f64)>, f64);

/// SSSP on vanilla MapReduce: one job per iteration, adjacency re-shuffled
/// every iteration.
pub fn plainmr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<(u64, f64)>)],
    source: u64,
    max_iterations: u64,
) -> Result<(Vec<(u64, f64)>, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();
    let mut input: Vec<(u64, PlainRec)> = graph
        .iter()
        .map(|(i, adj)| {
            let d = if *i == source { 0.0 } else { f64::INFINITY };
            (*i, (adj.clone(), d))
        })
        .collect();

    let mapper = move |i: &u64, rec: &PlainRec, out: &mut Emitter<u64, PlainRec>| {
        let (adj, dist) = rec;
        out.emit(*i, (adj.clone(), f64::NAN)); // structure marker
        if dist.is_finite() {
            for (j, w) in adj {
                out.emit(*j, (Vec::new(), dist + w));
            }
        }
    };
    let reducer = move |j: &u64, vs: Values<u64, PlainRec>, out: &mut Emitter<u64, PlainRec>| {
        let mut adj: Vec<(u64, f64)> = Vec::new();
        let mut best = f64::INFINITY;
        for (a, d) in &vs {
            if d.is_nan() {
                adj = a.clone();
            } else {
                best = best.min(*d);
            }
        }
        let dist = if *j == source { 0.0 } else { best };
        out.emit(*j, (adj, dist));
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let job = MapReduceJob::new(cfg, &mapper, &reducer, &HashPartitioner);
        let run = job.run(pool, &input, iterations)?;
        metrics.merge(&run.metrics);
        let mut next = run.flat_output();
        next.sort_by_key(|(k, _)| *k);
        let changed = input
            .iter()
            .zip(&next)
            .any(|((_, (_, a)), (_, (_, b)))| different_dist(*a, *b));
        input = next;
        if !changed {
            break;
        }
    }

    let dists = input.iter().map(|(k, (_, d))| (*k, *d)).collect();
    Ok((
        dists,
        EngineRun::new("PlainMR recomp", metrics, started.elapsed(), iterations),
    ))
}

fn different_dist(a: f64, b: f64) -> bool {
    match (a.is_finite(), b.is_finite()) {
        (true, true) => (a - b).abs() > 1e-12,
        (false, false) => false,
        _ => true,
    }
}

/// SSSP the HaLoop way: reduce-side adjacency cache plus two jobs per
/// iteration (join distances to cached adjacency, then min-aggregate) —
/// the same 2-job pattern as HaLoop PageRank (paper Algorithm 5).
pub fn haloop(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<(u64, f64)>)],
    source: u64,
    max_iterations: u64,
) -> Result<(Vec<(u64, f64)>, EngineRun)> {
    use std::collections::HashMap;
    use std::sync::Arc;

    let started = Instant::now();
    let mut metrics = JobMetrics::default();

    // Cache-building pass: ship the adjacency once into the reduce cache.
    let id_map = |i: &u64, adj: &Vec<(u64, f64)>, out: &mut Emitter<u64, Vec<(u64, f64)>>| {
        out.emit(*i, adj.clone())
    };
    let id_red =
        |i: &u64, vs: Values<u64, Vec<(u64, f64)>>, out: &mut Emitter<u64, Vec<(u64, f64)>>| {
            out.emit(*i, vs[0].clone())
        };
    let cache_job = MapReduceJob::new(cfg, &id_map, &id_red, &HashPartitioner);
    let cache_run = cache_job.run(pool, graph, 0)?;
    metrics.merge(&cache_run.metrics);
    let cache: Arc<HashMap<u64, Vec<(u64, f64)>>> =
        Arc::new(cache_run.flat_output().into_iter().collect());

    let mut dists: Vec<(u64, f64)> = graph
        .iter()
        .map(|(i, _)| (*i, if *i == source { 0.0 } else { f64::INFINITY }))
        .collect();
    dists.sort_by_key(|(k, _)| *k);
    let all_vertices: Vec<u64> = dists.iter().map(|(k, _)| *k).collect();

    // Job 1 (join): relax the cached out-edges of each finite vertex.
    // Infinite distances are encoded as NaN-free sentinels via is_finite.
    let cache1 = Arc::clone(&cache);
    let join_map = |i: &u64, d: &f64, out: &mut Emitter<u64, f64>| {
        if d.is_finite() {
            out.emit(*i, *d);
        }
    };
    let join_red = move |i: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>| {
        if let Some(adj) = cache1.get(i) {
            for (j, w) in adj {
                out.emit(*j, vs[0] + w);
            }
        }
    };
    // Job 2 (aggregate): min per vertex.
    let agg_map = |j: &u64, c: &f64, out: &mut Emitter<u64, f64>| out.emit(*j, *c);
    let agg_red = move |j: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>| {
        out.emit(*j, vs.iter().copied().fold(f64::INFINITY, f64::min));
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let job1 = MapReduceJob::new(cfg, &join_map, &join_red, &HashPartitioner);
        let run1 = job1.run(pool, &dists, iterations)?;
        metrics.merge(&run1.metrics);
        let contribs = run1.flat_output();

        let job2 = MapReduceJob::new(cfg, &agg_map, &agg_red, &HashPartitioner);
        let run2 = job2.run(pool, &contribs, iterations)?;
        metrics.merge(&run2.metrics);
        let relaxed: HashMap<u64, f64> = run2.flat_output().into_iter().collect();

        let mut next: Vec<(u64, f64)> = all_vertices
            .iter()
            .map(|v| {
                let relaxed_d = relaxed.get(v).copied().unwrap_or(f64::INFINITY);
                let prev = dists
                    .binary_search_by(|(k, _)| k.cmp(v))
                    .map(|idx| dists[idx].1)
                    .unwrap_or(f64::INFINITY);
                let d = if *v == source {
                    0.0
                } else {
                    relaxed_d.min(prev)
                };
                (*v, d)
            })
            .collect();
        next.sort_by_key(|(k, _)| *k);
        let changed = dists
            .iter()
            .zip(&next)
            .any(|((_, a), (_, b))| different_dist(*a, *b));
        dists = next;
        if !changed {
            break;
        }
    }
    Ok((
        dists,
        EngineRun::new("HaLoop recomp", metrics, started.elapsed(), iterations),
    ))
}

/// SSSP on the iterative engine (iterMR baseline).
pub fn itermr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<(u64, f64)>)],
    source: u64,
    max_iterations: u64,
) -> Result<(PartitionedData<u64, Vec<(u64, f64)>, u64, f64>, EngineRun)> {
    let started = Instant::now();
    let spec = Sssp { source };
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon: 1e-12,
            preserve: PreserveMode::None,
        })
        .build()?;
    let mut data = build_partitioned(&spec, cfg.n_reduce, graph.to_vec());
    let report = session.run_initial(&mut data)?;
    Ok((
        data,
        EngineRun::new(
            "IterMR recomp",
            report.total_metrics(),
            started.elapsed(),
            report.n_iterations(),
        ),
    ))
}

/// i2MapReduce initial converged run with MRBGraph preservation.
pub fn i2mr_initial(
    pool: &WorkerPool,
    cfg: &JobConfig,
    graph: &[(u64, Vec<(u64, f64)>)],
    source: u64,
    store_dir: &Path,
    store_runtime: StoreRuntimeConfig,
    max_iterations: u64,
) -> Result<(
    PartitionedData<u64, Vec<(u64, f64)>, u64, f64>,
    StoreManager,
    EngineRun,
)> {
    let started = Instant::now();
    let spec = Sssp { source };
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon: 1e-12,
            preserve: PreserveMode::FinalOnly,
        })
        .store_runtime(store_runtime)
        .store_dir(store_dir)
        .build()?;
    let mut data = build_partitioned(&spec, cfg.n_reduce, graph.to_vec());
    let report = session.run_initial(&mut data)?;
    let stores = session.finish()?.stores.expect("session owns the stores");
    Ok((
        data,
        stores,
        EngineRun::new(
            "i2MR initial",
            report.total_metrics(),
            started.elapsed(),
            report.n_iterations(),
        ),
    ))
}

/// Incremental refresh with FT = 0 (exact, §8.2).
pub fn i2mr_incremental(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<u64, Vec<(u64, f64)>, u64, f64>,
    stores: &StoreManager,
    source: u64,
    delta: &Delta<u64, Vec<(u64, f64)>>,
    max_iterations: u64,
) -> Result<(IncrRunReport, EngineRun)> {
    let started = Instant::now();
    let spec = Sssp { source };
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(IncrParams {
            // FT = 0: "nodes without any changes will be filtered out".
            filter_threshold: Some(0.0),
            convergence_epsilon: 1e-12,
            max_iterations,
            ..Default::default()
        })
        .iter(IterParams {
            epsilon: 1e-12,
            max_iterations,
            preserve: PreserveMode::None,
        })
        .stores_ref(stores)
        .build()?;
    let report = session.run_incremental(data, delta)?;
    let run = EngineRun::new(
        "i2MR (FT=0)",
        report.total_metrics(),
        started.elapsed(),
        report.iterations.len() as u64,
    );
    Ok((report, run))
}

/// Refresh on the workset-driven delta-iteration engine with FT = 0:
/// bit-identical results to [`i2mr_incremental`], only changed keys
/// scheduled, and the monotone min-plus contract debug-asserted.
pub fn i2mr_delta(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<u64, Vec<(u64, f64)>, u64, f64>,
    stores: &StoreManager,
    source: u64,
    delta: &Delta<u64, Vec<(u64, f64)>>,
    max_iterations: u64,
) -> Result<(DeltaRunReport, EngineRun)> {
    let started = Instant::now();
    let spec = Sssp { source };
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(IncrParams {
            filter_threshold: Some(0.0),
            convergence_epsilon: 1e-12,
            max_iterations,
            ..Default::default()
        })
        .iter(IterParams {
            epsilon: 1e-12,
            max_iterations,
            preserve: PreserveMode::None,
        })
        .stores_ref(stores)
        .build()?;
    let report = session.run_delta(data, delta)?;
    let run = EngineRun::new(
        "i2MR delta-iter (FT=0)",
        report.total_metrics(),
        started.elapsed(),
        report.iterations.len() as u64,
    );
    Ok((report, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_datagen::delta::{weighted_graph_delta, DeltaSpec};
    use i2mr_datagen::graph::GraphGen;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "i2mr-sssp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Dijkstra oracle.
    fn dijkstra(graph: &[(u64, Vec<(u64, f64)>)], source: u64) -> Vec<(u64, f64)> {
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap};
        let adj: HashMap<u64, &Vec<(u64, f64)>> = graph.iter().map(|(k, v)| (*k, v)).collect();
        let mut dist: HashMap<u64, f64> = graph.iter().map(|(k, _)| (*k, f64::INFINITY)).collect();
        dist.insert(source, 0.0);
        let mut heap: BinaryHeap<(Reverse<u64>, u64)> = BinaryHeap::new();
        // Distances scaled to integers for the heap ordering (weights > 0).
        let scale = 1e9;
        heap.push((Reverse(0), source));
        let mut done: std::collections::HashSet<u64> = Default::default();
        while let Some((_, u)) = heap.pop() {
            if !done.insert(u) {
                continue;
            }
            let du = dist[&u];
            if let Some(outs) = adj.get(&u) {
                for (v, w) in outs.iter() {
                    if !dist.contains_key(v) {
                        continue; // edge to a vertex without a record
                    }
                    let nd = du + w;
                    if nd < dist[v] {
                        dist.insert(*v, nd);
                        heap.push((Reverse((nd * scale) as u64), *v));
                    }
                }
            }
        }
        let mut out: Vec<(u64, f64)> = dist.into_iter().collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    fn assert_dists_equal(a: &[(u64, f64)], b: &[(u64, f64)]) {
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            match (va.is_finite(), vb.is_finite()) {
                (true, true) => assert!((va - vb).abs() < 1e-9, "vertex {ka}: {va} vs {vb}"),
                (false, false) => {}
                _ => panic!("vertex {ka}: {va} vs {vb}"),
            }
        }
    }

    #[test]
    fn engines_match_dijkstra() {
        let g = GraphGen::new(150, 900, 17).weighted();
        let want = dijkstra(&g, 0);
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);

        let (plain, plain_run) = plainmr(&pool, &cfg, &g, 0, 300).unwrap();
        assert_dists_equal(&plain, &want);

        let (data, iter_run) = itermr(&pool, &cfg, &g, 0, 300).unwrap();
        assert_dists_equal(&data.state_snapshot(), &want);

        assert_eq!(iter_run.metrics.jobs_started, 1);
        assert!(plain_run.metrics.jobs_started > 1);
    }

    #[test]
    fn haloop_matches_dijkstra() {
        let g = GraphGen::new(100, 700, 31).weighted();
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (hal, run) = haloop(&pool, &cfg, &g, 0, 200).unwrap();
        assert_dists_equal(&hal, &dijkstra(&g, 0));
        // Cache job + two jobs per iteration.
        assert_eq!(run.metrics.jobs_started, 2 * run.iterations + 1);
    }

    #[test]
    fn incremental_ft0_is_exact_after_improvements() {
        let g = GraphGen::new(120, 800, 23).weighted();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let (mut data, stores, _) =
            i2mr_initial(&pool, &cfg, &g, 0, &tmp("exact"), Default::default(), 300).unwrap();
        assert_dists_equal(&data.state_snapshot(), &dijkstra(&g, 0));

        // Improvement-only delta (weight decreases / edge insertions).
        let delta = weighted_graph_delta(&g, DeltaSpec::ten_percent(31));
        let (report, _) =
            i2mr_incremental(&pool, &cfg, &mut data, &stores, 0, &delta, 300).unwrap();
        assert!(report.converged);

        let updated = delta.apply_to(&g);
        assert_dists_equal(&data.state_snapshot(), &dijkstra(&updated, 0));
    }

    #[test]
    fn delta_refresh_is_bitwise_identical_to_incremental() {
        let g = GraphGen::new(120, 800, 23).weighted();
        let cfg = JobConfig::symmetric(3);
        let pool = WorkerPool::new(3);
        let (mut data_full, st_full, _) =
            i2mr_initial(&pool, &cfg, &g, 0, &tmp("dfull"), Default::default(), 300).unwrap();
        let (mut data_delta, st_delta, _) =
            i2mr_initial(&pool, &cfg, &g, 0, &tmp("ddelta"), Default::default(), 300).unwrap();

        let delta = weighted_graph_delta(&g, DeltaSpec::ten_percent(47));
        let (full_rep, _) =
            i2mr_incremental(&pool, &cfg, &mut data_full, &st_full, 0, &delta, 300).unwrap();
        let (delta_rep, _) =
            i2mr_delta(&pool, &cfg, &mut data_delta, &st_delta, 0, &delta, 300).unwrap();
        assert!(full_rep.converged && delta_rep.converged);
        assert_eq!(data_full.state, data_delta.state, "state diverged");
        for p in 0..cfg.n_reduce {
            assert_eq!(
                st_full.export(p).unwrap(),
                st_delta.export(p).unwrap(),
                "shard {p} export diverged"
            );
        }
        // FT = 0 propagates exactly the improved keys; the exact refresh
        // matches Dijkstra on the updated graph.
        let updated = delta.apply_to(&g);
        assert_dists_equal(&data_delta.state_snapshot(), &dijkstra(&updated, 0));
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        // Two components: 0-1-2 reachable, 10-11 not.
        let g: Vec<(u64, Vec<(u64, f64)>)> = vec![
            (0, vec![(1, 1.0)]),
            (1, vec![(2, 2.0)]),
            (2, vec![]),
            (10, vec![(11, 1.0)]),
            (11, vec![]),
        ];
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (data, _) = itermr(&pool, &cfg, &g, 0, 50).unwrap();
        let snapshot = data.state_snapshot();
        let d: std::collections::HashMap<u64, f64> = snapshot.into_iter().collect();
        assert_eq!(d[&0], 0.0);
        assert_eq!(d[&1], 1.0);
        assert_eq!(d[&2], 3.0);
        assert!(d[&10].is_infinite());
        assert!(d[&11].is_infinite());
    }
}
