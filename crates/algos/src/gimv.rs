//! GIM-V — Generalized Iterated Matrix-Vector multiplication (paper
//! Algorithm 4), many-to-one dependency.
//!
//! Structure kv-pairs are matrix blocks `((i, j), m_{i,j})`; state kv-pairs
//! are vector blocks `(j, v_j)`; `project((i, j)) = j` — every block of
//! column `j` depends on vector block `j`.
//!
//! The concrete instance is PageRank-via-GIM-V over a row-normalized
//! matrix: `combine2 = block product`, `combineAll = (1-d)·1 + d·Σ`,
//! `assign(v_i, v'_i) = v'_i` — a contraction, so it converges from any
//! state (which incremental refresh needs).
//!
//! On vanilla MapReduce this takes **two jobs per iteration** — the first
//! joins vector blocks to matrix blocks, the second aggregates — whereas
//! the iterative engines' Project-based co-partitioning does it in one
//! (the §8.2 GIM-V discussion: "our general-purpose iterative support
//! removes the need for this extra job").

use crate::report::EngineRun;
use i2mr_common::codec::Codec;
use i2mr_common::error::{Error, Result};
use i2mr_common::metrics::JobMetrics;
use i2mr_core::delta::Delta;
use i2mr_core::incr_iter::{IncrParams, IncrRunReport};
use i2mr_core::iter_engine::{build_partitioned, PartitionedData};
use i2mr_core::iterative::{DependencyKind, IterParams, IterativeSpec, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_datagen::matrix::Block;
use i2mr_mapred::config::JobConfig;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::pool::WorkerPool;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// GIM-V spec (PageRank-style instance; see module docs).
#[derive(Clone, Copy, Debug)]
pub struct Gimv {
    /// Vector-block edge length.
    pub block_size: usize,
    /// Damping factor of the PageRank-style combineAll.
    pub damping: f64,
}

impl Gimv {
    /// `combine2(m_{i,j}, v_j)`: block-local matrix-vector product.
    pub fn combine2(&self, block: &Block, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.block_size];
        for (r, c, val) in block {
            out[*r as usize] += val * v[*c as usize];
        }
        out
    }

    /// `combineAll({mv_{i,j}})` with the damping offset. Accepts any
    /// borrowing iterator so both owned slices and the zero-copy
    /// [`Values`] view feed it directly.
    pub fn combine_all<'a>(&self, partials: impl IntoIterator<Item = &'a Vec<f64>>) -> Vec<f64> {
        let mut out = vec![1.0 - self.damping; self.block_size];
        for p in partials {
            for (acc, x) in out.iter_mut().zip(p) {
                *acc += self.damping * x;
            }
        }
        out
    }
}

impl IterativeSpec for Gimv {
    type SK = (u64, u64);
    type SV = Block;
    type DK = u64;
    type DV = Vec<f64>;
    type V2 = Vec<f64>;

    fn project(&self, sk: &(u64, u64)) -> u64 {
        sk.1 // column block index
    }

    fn map(
        &self,
        sk: &(u64, u64),
        block: &Block,
        _dk: &u64,
        v: &Vec<f64>,
        out: &mut Emitter<u64, Vec<f64>>,
    ) {
        out.emit(sk.0, self.combine2(block, v));
    }

    fn reduce(&self, _dk: &u64, _prev: &Vec<f64>, values: Values<'_, u64, Vec<f64>>) -> Vec<f64> {
        self.combine_all(values)
    }

    fn init(&self, _dk: &u64) -> Vec<f64> {
        vec![1.0; self.block_size]
    }

    fn difference(&self, curr: &Vec<f64>, prev: &Vec<f64>) -> f64 {
        if curr.len() != prev.len() {
            return f64::INFINITY;
        }
        curr.iter()
            .zip(prev)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn dependency(&self) -> DependencyKind {
        DependencyKind::ManyToOne
    }
}

/// Tagged value for the plainMR two-job formulation.
#[derive(Clone, Debug, PartialEq)]
pub enum GimvMsg {
    /// A matrix block on its way to the join.
    Block(Block),
    /// A vector block replicated to its column's blocks.
    Vector(Vec<f64>),
}

impl Codec for GimvMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            GimvMsg::Block(b) => {
                buf.push(0);
                b.encode(buf);
            }
            GimvMsg::Vector(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> i2mr_common::error::Result<Self> {
        let (&tag, rest) = input
            .split_first()
            .ok_or_else(|| Error::codec("GimvMsg: empty"))?;
        *input = rest;
        match tag {
            0 => Ok(GimvMsg::Block(Block::decode(input)?)),
            1 => Ok(GimvMsg::Vector(Vec::<f64>::decode(input)?)),
            t => Err(Error::codec(format!("GimvMsg: bad tag {t}"))),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            GimvMsg::Block(b) => b.encoded_len(),
            GimvMsg::Vector(v) => v.encoded_len(),
        }
    }
}

/// GIM-V on vanilla MapReduce: Algorithm 4's two jobs per iteration.
pub fn plainmr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    blocks: &[((u64, u64), Block)],
    spec: &Gimv,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Vec<(u64, Vec<f64>)>, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();
    // Which row-blocks exist in each column (for vector replication).
    let mut rows_of_col: HashMap<u64, Vec<u64>> = HashMap::new();
    for ((i, j), _) in blocks {
        rows_of_col.entry(*j).or_default().push(*i);
    }
    let rows_of_col = Arc::new(rows_of_col);

    // Vector blocks exist for every column that has matrix blocks.
    let mut vector: Vec<(u64, Vec<f64>)> = rows_of_col
        .keys()
        .map(|j| (*j, vec![1.0; spec.block_size]))
        .collect();
    vector.sort_by_key(|(j, _)| *j);

    // Job 1: join vector blocks onto matrix blocks keyed by (i, j).
    let rows1 = Arc::clone(&rows_of_col);
    let join_map =
        move |k: &(u64, u64), msg: &GimvMsg, out: &mut Emitter<(u64, u64), GimvMsg>| match msg {
            GimvMsg::Block(_) => out.emit(*k, msg.clone()),
            GimvMsg::Vector(v) => {
                let j = k.0;
                if let Some(rows) = rows1.get(&j) {
                    for i in rows {
                        out.emit((*i, j), GimvMsg::Vector(v.clone()));
                    }
                }
            }
        };
    let spec1 = *spec;
    let join_red =
        move |k: &(u64, u64), vs: Values<(u64, u64), GimvMsg>, out: &mut Emitter<u64, GimvMsg>| {
            let mut block: Option<&Block> = None;
            let mut vec_block: Option<&Vec<f64>> = None;
            for m in vs {
                match m {
                    GimvMsg::Block(b) => block = Some(b),
                    GimvMsg::Vector(v) => vec_block = Some(v),
                }
            }
            if let (Some(b), Some(v)) = (block, vec_block) {
                out.emit(k.0, GimvMsg::Block(mv_as_block(&spec1.combine2(b, v))));
            }
        };
    // Job 2: aggregate the partial products per row block.
    let spec2 = *spec;
    let agg_map = |i: &u64, m: &GimvMsg, out: &mut Emitter<u64, GimvMsg>| out.emit(*i, m.clone());
    let agg_red = move |i: &u64, vs: Values<u64, GimvMsg>, out: &mut Emitter<u64, GimvMsg>| {
        let partials: Vec<Vec<f64>> = vs
            .iter()
            .map(|m| match m {
                GimvMsg::Block(b) => block_as_mv(b, spec2.block_size),
                GimvMsg::Vector(v) => v.clone(),
            })
            .collect();
        out.emit(*i, GimvMsg::Vector(spec2.combine_all(&partials)));
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        // Assemble job-1 input: all matrix blocks + current vector.
        let mut input: Vec<((u64, u64), GimvMsg)> = blocks
            .iter()
            .map(|(k, b)| (*k, GimvMsg::Block(b.clone())))
            .collect();
        for (j, v) in &vector {
            input.push(((*j, u64::MAX), GimvMsg::Vector(v.clone())));
        }

        let job1 = MapReduceJob::new(cfg, &join_map, &join_red, &HashPartitioner);
        let run1 = job1.run(pool, &input, iterations)?;
        metrics.merge(&run1.metrics);
        let mid = run1.flat_output();

        let job2 = MapReduceJob::new(cfg, &agg_map, &agg_red, &HashPartitioner);
        let run2 = job2.run(pool, &mid, iterations)?;
        metrics.merge(&run2.metrics);

        let mut next: Vec<(u64, Vec<f64>)> = run2
            .flat_output()
            .into_iter()
            .map(|(i, m)| match m {
                GimvMsg::Vector(v) => (i, v),
                GimvMsg::Block(b) => (i, block_as_mv(&b, spec.block_size)),
            })
            .collect();
        // Row blocks receiving no products settle at the damping offset;
        // keep the key set equal to the column-block set.
        let have: HashMap<u64, usize> = next
            .iter()
            .enumerate()
            .map(|(idx, (i, _))| (*i, idx))
            .collect();
        let mut complete: Vec<(u64, Vec<f64>)> = vector
            .iter()
            .map(|(j, _)| match have.get(j) {
                Some(idx) => (*j, next[*idx].1.clone()),
                None => (*j, vec![1.0 - spec.damping; spec.block_size]),
            })
            .collect();
        complete.sort_by_key(|(j, _)| *j);
        next = complete;

        let max_diff = vector
            .iter()
            .zip(&next)
            .map(|((_, a), (_, b))| spec.difference(b, a))
            .fold(0.0, f64::max);
        vector = next;
        if max_diff < epsilon {
            break;
        }
    }

    Ok((
        vector,
        EngineRun::new("PlainMR recomp", metrics, started.elapsed(), iterations),
    ))
}

/// Dense vector → sparse block triples (column 0).
fn mv_as_block(v: &[f64]) -> Block {
    v.iter()
        .enumerate()
        .map(|(r, &x)| (r as u32, 0, x))
        .collect()
}

/// Sparse column-0 block back to a dense vector.
fn block_as_mv(b: &Block, size: usize) -> Vec<f64> {
    let mut v = vec![0.0; size];
    for (r, _, x) in b {
        v[*r as usize] = *x;
    }
    v
}

/// GIM-V the HaLoop way: matrix blocks cached reduce-side after one
/// shipping pass, but still **two jobs per iteration** (join + aggregate).
/// The caching removes the per-iteration matrix shuffle — HaLoop's big win
/// over plainMR here — while the extra job and the vector replication
/// remain (the gap i2MapReduce's single-job model closes, §8.2).
pub fn haloop(
    pool: &WorkerPool,
    cfg: &JobConfig,
    blocks: &[((u64, u64), Block)],
    spec: &Gimv,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(Vec<(u64, Vec<f64>)>, EngineRun)> {
    let started = Instant::now();
    let mut metrics = JobMetrics::default();
    let mut rows_of_col: HashMap<u64, Vec<u64>> = HashMap::new();
    for ((i, j), _) in blocks {
        rows_of_col.entry(*j).or_default().push(*i);
    }
    let rows_of_col = Arc::new(rows_of_col);

    // Cache-building pass: ship the matrix once into the reduce-side cache.
    let id_map =
        |k: &(u64, u64), b: &Block, out: &mut Emitter<(u64, u64), Block>| out.emit(*k, b.clone());
    let id_red =
        |k: &(u64, u64), vs: Values<(u64, u64), Block>, out: &mut Emitter<(u64, u64), Block>| {
            out.emit(*k, vs[0].clone())
        };
    let cache_job = MapReduceJob::new(cfg, &id_map, &id_red, &HashPartitioner);
    let cache_run = cache_job.run(pool, blocks, 0)?;
    metrics.merge(&cache_run.metrics);
    let cache: Arc<HashMap<(u64, u64), Block>> =
        Arc::new(cache_run.flat_output().into_iter().collect());

    let mut vector: Vec<(u64, Vec<f64>)> = rows_of_col
        .keys()
        .map(|j| (*j, vec![1.0; spec.block_size]))
        .collect();
    vector.sort_by_key(|(j, _)| *j);

    // Job 1: replicate vector blocks to their column's (i, j) keys; the
    // reducer joins against the cached matrix block.
    let rows1 = Arc::clone(&rows_of_col);
    let join_map = move |j: &u64, v: &Vec<f64>, out: &mut Emitter<(u64, u64), Vec<f64>>| {
        if let Some(rows) = rows1.get(j) {
            for i in rows {
                out.emit((*i, *j), v.clone());
            }
        }
    };
    let spec1 = *spec;
    let cache1 = Arc::clone(&cache);
    let join_red = move |k: &(u64, u64),
                         vs: Values<(u64, u64), Vec<f64>>,
                         out: &mut Emitter<u64, Vec<f64>>| {
        if let Some(block) = cache1.get(k) {
            out.emit(k.0, spec1.combine2(block, &vs[0]));
        }
    };
    let spec2 = *spec;
    let agg_map = |i: &u64, p: &Vec<f64>, out: &mut Emitter<u64, Vec<f64>>| out.emit(*i, p.clone());
    let agg_red = move |i: &u64, vs: Values<u64, Vec<f64>>, out: &mut Emitter<u64, Vec<f64>>| {
        out.emit(*i, spec2.combine_all(vs));
    };

    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let job1 = MapReduceJob::new(cfg, &join_map, &join_red, &HashPartitioner);
        let run1 = job1.run(pool, &vector, iterations)?;
        metrics.merge(&run1.metrics);
        let mid = run1.flat_output();
        let job2 = MapReduceJob::new(cfg, &agg_map, &agg_red, &HashPartitioner);
        let run2 = job2.run(pool, &mid, iterations)?;
        metrics.merge(&run2.metrics);
        let summed: HashMap<u64, Vec<f64>> = run2.flat_output().into_iter().collect();
        let mut next: Vec<(u64, Vec<f64>)> = vector
            .iter()
            .map(|(j, _)| match summed.get(j) {
                Some(v) => (*j, v.clone()),
                None => (*j, vec![1.0 - spec.damping; spec.block_size]),
            })
            .collect();
        next.sort_by_key(|(j, _)| *j);
        let max_diff = vector
            .iter()
            .zip(&next)
            .map(|((_, a), (_, b))| spec.difference(b, a))
            .fold(0.0, f64::max);
        vector = next;
        if max_diff < epsilon {
            break;
        }
    }
    Ok((
        vector,
        EngineRun::new("HaLoop recomp", metrics, started.elapsed(), iterations),
    ))
}

/// GIM-V on the iterative engine: one job per iteration.
pub fn itermr(
    pool: &WorkerPool,
    cfg: &JobConfig,
    blocks: &[((u64, u64), Block)],
    spec: &Gimv,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(PartitionedData<(u64, u64), Block, u64, Vec<f64>>, EngineRun)> {
    let started = Instant::now();
    let session = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon,
            preserve: PreserveMode::None,
        })
        .build()?;
    let mut data = build_partitioned(spec, cfg.n_reduce, blocks.to_vec());
    let report = session.run_initial(&mut data)?;
    Ok((
        data,
        EngineRun::new(
            "IterMR recomp",
            report.total_metrics(),
            started.elapsed(),
            report.n_iterations(),
        ),
    ))
}

/// i2MapReduce initial converged run with MRBGraph preservation.
#[allow(clippy::too_many_arguments)]
pub fn i2mr_initial(
    pool: &WorkerPool,
    cfg: &JobConfig,
    blocks: &[((u64, u64), Block)],
    spec: &Gimv,
    store_dir: &Path,
    store_runtime: StoreRuntimeConfig,
    max_iterations: u64,
    epsilon: f64,
) -> Result<(
    PartitionedData<(u64, u64), Block, u64, Vec<f64>>,
    StoreManager,
    EngineRun,
)> {
    let started = Instant::now();
    let session = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations,
            epsilon,
            preserve: PreserveMode::FinalOnly,
        })
        .store_runtime(store_runtime)
        .store_dir(store_dir)
        .build()?;
    let mut data = build_partitioned(spec, cfg.n_reduce, blocks.to_vec());
    let report = session.run_initial(&mut data)?;
    let stores = session.finish()?.stores.expect("session owns the stores");
    Ok((
        data,
        stores,
        EngineRun::new(
            "i2MR initial",
            report.total_metrics(),
            started.elapsed(),
            report.n_iterations(),
        ),
    ))
}

/// Incremental GIM-V refresh after matrix-block updates (exact mode).
#[allow(clippy::too_many_arguments)]
pub fn i2mr_incremental(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<(u64, u64), Block, u64, Vec<f64>>,
    stores: &StoreManager,
    spec: &Gimv,
    delta: &Delta<(u64, u64), Block>,
    max_iterations: u64,
    convergence_epsilon: f64,
) -> Result<(IncrRunReport, EngineRun)> {
    i2mr_incremental_cpc(
        pool,
        cfg,
        data,
        stores,
        spec,
        delta,
        max_iterations,
        convergence_epsilon,
        None,
    )
}

/// Incremental GIM-V refresh with an explicit CPC filter threshold.
#[allow(clippy::too_many_arguments)]
pub fn i2mr_incremental_cpc(
    pool: &WorkerPool,
    cfg: &JobConfig,
    data: &mut PartitionedData<(u64, u64), Block, u64, Vec<f64>>,
    stores: &StoreManager,
    spec: &Gimv,
    delta: &Delta<(u64, u64), Block>,
    max_iterations: u64,
    convergence_epsilon: f64,
    filter_threshold: Option<f64>,
) -> Result<(IncrRunReport, EngineRun)> {
    let started = Instant::now();
    let session = RunBuilder::new(spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(IncrParams {
            filter_threshold,
            convergence_epsilon,
            max_iterations,
            ..Default::default()
        })
        .iter(IterParams {
            epsilon: convergence_epsilon,
            max_iterations,
            preserve: PreserveMode::None,
        })
        .stores_ref(stores)
        .build()?;
    let report = session.run_incremental(data, delta)?;
    let run = EngineRun::new(
        "i2MR",
        report.total_metrics(),
        started.elapsed(),
        report.iterations.len() as u64,
    );
    Ok((report, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_datagen::matrix::MatrixGen;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "i2mr-gimv-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn vectors_close(a: &[(u64, Vec<f64>)], b: &[(u64, Vec<f64>)], tol: f64) {
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(b) {
            assert_eq!(ka, kb);
            for (x, y) in va.iter().zip(vb) {
                assert!((x - y).abs() < tol, "block {ka}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn plainmr_and_itermr_agree() {
        // Dense-ish so every block row/column exists.
        let gen = MatrixGen::new(32, 8, 600, 3);
        let blocks = gen.blocks();
        let spec = Gimv {
            block_size: 8,
            damping: 0.85,
        };
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (plain, plain_run) = plainmr(&pool, &cfg, &blocks, &spec, 100, 1e-10).unwrap();
        let (iter_data, iter_run) = itermr(&pool, &cfg, &blocks, &spec, 100, 1e-10).unwrap();
        vectors_close(&plain, &iter_data.state_snapshot(), 1e-8);
        // Two jobs per iteration vs one overall.
        assert_eq!(plain_run.metrics.jobs_started, 2 * plain_run.iterations);
        assert_eq!(iter_run.metrics.jobs_started, 1);
    }

    #[test]
    fn incremental_matches_recompute_after_block_updates() {
        let gen = MatrixGen::new(32, 8, 600, 7);
        let blocks = gen.blocks();
        let spec = Gimv {
            block_size: 8,
            damping: 0.85,
        };
        let cfg = JobConfig::symmetric(2);
        let pool = WorkerPool::new(2);
        let (mut data, stores, _) = i2mr_initial(
            &pool,
            &cfg,
            &blocks,
            &spec,
            &tmp("incr"),
            Default::default(),
            200,
            1e-11,
        )
        .unwrap();

        let delta = i2mr_datagen::delta::matrix_delta(
            &blocks,
            i2mr_datagen::delta::DeltaSpec::ten_percent(13),
        );
        assert!(!delta.is_empty());
        let (report, _) =
            i2mr_incremental(&pool, &cfg, &mut data, &stores, &spec, &delta, 400, 1e-10).unwrap();
        assert!(report.converged);

        let updated = delta.apply_to(&blocks);
        let (oracle, _) = itermr(&pool, &cfg, &updated, &spec, 400, 1e-12).unwrap();
        vectors_close(&data.state_snapshot(), &oracle.state_snapshot(), 1e-5);
    }

    #[test]
    fn combine2_is_block_matvec() {
        let spec = Gimv {
            block_size: 3,
            damping: 0.85,
        };
        // Block [[0, .5, 0], [0, 0, .25], [0, 0, 0]] × [1, 2, 4].
        let block: Block = vec![(0, 1, 0.5), (1, 2, 0.25)];
        let out = spec.combine2(&block, &[1.0, 2.0, 4.0]);
        assert_eq!(out, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn gimv_msg_codec_roundtrip() {
        for msg in [
            GimvMsg::Block(vec![(1, 2, 0.5)]),
            GimvMsg::Vector(vec![1.0, -2.5]),
        ] {
            let enc = i2mr_common::codec::encode_to(&msg);
            let dec: GimvMsg = i2mr_common::codec::decode_exact(&enc).unwrap();
            assert_eq!(dec, msg);
        }
        assert!(i2mr_common::codec::decode_exact::<GimvMsg>(&[9]).is_err());
    }
}
