//! Shared harness utilities for the per-figure/table bench targets.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the paper's §8 (see `DESIGN.md` §3 for the full index) and prints:
//!
//! 1. a header naming the experiment and the scaled workload,
//! 2. the same rows/series the paper reports (measured **and** modeled
//!    cluster time — see `i2mr-common::costmodel`),
//! 3. a `shape:` line asserting the paper's qualitative result
//!    (orderings / crossovers), marked `OK` or `MISMATCH`.
//!
//! Absolute numbers are *not* expected to match the paper (32-node EC2
//! cluster vs one machine at ~1/1000 data scale); shapes are.

use i2mr_algos::report::EngineRun;
use i2mr_common::costmodel::ClusterCostModel;
use std::time::Duration;

/// Default cost model used by all benches (documented in DESIGN.md §1).
pub fn default_model() -> ClusterCostModel {
    ClusterCostModel::default()
}

/// Print the experiment banner.
pub fn banner(id: &str, title: &str, workload: &str) {
    println!();
    println!("== {id}: {title} ==");
    println!("   workload: {workload}");
    let m = default_model();
    println!(
        "   cost model: job startup {:?}, network {} MiB/s",
        m.job_startup,
        m.network_bytes_per_sec / (1024 * 1024)
    );
}

/// Format a duration in milliseconds with 1 decimal.
pub fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e3)
}

/// Print one engine-comparison table with runtimes normalized to the first
/// row's modeled time (the paper's Fig. 8 presentation).
pub fn print_engine_table(rows: &[EngineRun], model: &ClusterCostModel) {
    let base = rows
        .first()
        .map(|r| r.modeled(model).as_secs_f64())
        .unwrap_or(1.0);
    println!(
        "   {:<26} {:>9} {:>9} {:>11} {:>7} {:>12} {:>10}",
        "engine", "wall(ms)", "model(ms)", "normalized", "iters", "shuffled(KB)", "jobs"
    );
    for r in rows {
        let modeled = r.modeled(model);
        println!(
            "   {:<26} {:>9} {:>9} {:>11.3} {:>7} {:>12.1} {:>10}",
            r.name,
            ms(r.wall),
            ms(modeled),
            modeled.as_secs_f64() / base,
            r.iterations,
            r.metrics.shuffled_bytes as f64 / 1024.0,
            r.metrics.jobs_started,
        );
    }
}

/// Check a strictly-descending ordering of modeled runtimes and print the
/// `shape:` verdict. `expected` lists engine names from slowest to fastest.
pub fn check_shape(label: &str, rows: &[EngineRun], expected_slowest_to_fastest: &[&str]) -> bool {
    let model = default_model();
    let time_of = |name: &str| -> Option<f64> {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.modeled(&model).as_secs_f64())
    };
    let mut ok = true;
    let mut prev: Option<(f64, &str)> = None;
    for name in expected_slowest_to_fastest {
        let Some(t) = time_of(name) else {
            println!("   shape: {label}: engine {name} missing : MISMATCH");
            return false;
        };
        if let Some((pt, pname)) = prev {
            if t > pt {
                println!(
                    "   shape: {label}: expected {name} ({t:.3}s) <= {pname} ({pt:.3}s) : MISMATCH"
                );
                ok = false;
            }
        }
        prev = Some((t, name));
    }
    if ok {
        println!(
            "   shape: {label}: {} : OK",
            expected_slowest_to_fastest.join(" >= ")
        );
    }
    ok
}

/// A fresh scratch directory for a bench run.
pub fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// True when the caller asked for a quick run (`I2MR_BENCH_QUICK=1`),
/// shrinking workloads ~10× so `cargo bench` stays fast in CI.
pub fn quick() -> bool {
    std::env::var("I2MR_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Scale a size down in quick mode.
pub fn sized(full: u64) -> u64 {
    if quick() {
        (full / 8).max(16)
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use i2mr_common::metrics::JobMetrics;

    fn run(name: &str, wall_ms: u64, jobs: u64) -> EngineRun {
        EngineRun::new(
            name,
            JobMetrics {
                jobs_started: jobs,
                ..Default::default()
            },
            Duration::from_millis(wall_ms),
            1,
        )
    }

    #[test]
    fn shape_check_accepts_correct_order() {
        let rows = vec![run("slow", 1000, 0), run("fast", 10, 0)];
        assert!(check_shape("t", &rows, &["slow", "fast"]));
    }

    #[test]
    fn shape_check_rejects_wrong_order() {
        let rows = vec![run("slow", 10, 0), run("fast", 1000, 0)];
        assert!(!check_shape("t", &rows, &["slow", "fast"]));
    }

    #[test]
    fn shape_check_rejects_missing_engine() {
        let rows = vec![run("only", 10, 0)];
        assert!(!check_shape("t", &rows, &["only", "missing"]));
    }

    #[test]
    fn modeled_time_includes_job_startup() {
        let rows = vec![run("many-jobs", 10, 100), run("one-job", 10, 1)];
        assert!(check_shape("t", &rows, &["many-jobs", "one-job"]));
    }
}
