//! Fig. 12: Spark vs iterMR vs plainMR across dataset sizes.
//!
//! PageRank over the ClueWeb-{xs,s,m,l} presets (Table 5 ratios at 1/1000
//! scale). The memflow comparator gets a fixed memory budget sized so the
//! three smaller datasets fit in RAM and ClueWeb-l does not — reproducing
//! the paper's crossover: "Spark is really fast when processing small data
//! sets … However, when processing the ClueWeb-l data set, Spark is not as
//! good as iterMR."

use i2mr_algos::pagerank::{self, PageRank};
use i2mr_bench::{banner, default_model, ms, scratch};
use i2mr_mapred::{JobConfig, WorkerPool};

fn main() {
    let iters = 10u64;
    banner(
        "Fig. 12",
        "PageRank runtime: plainMR vs iterMR vs Spark(memflow) across data sizes",
        "ClueWeb presets xs/s/m/l (Table 5 ratios, 1/1000 scale), memflow budget fits xs/s/m only",
    );
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let model = default_model();
    let spec = PageRank::default();

    // Budget chosen so xs/s/m stay resident and l spills. The l preset's
    // intermediate datasets (links + ranks + contribs per iteration) exceed
    // this comfortably.
    let budget: usize = 3 * 1024 * 1024;

    println!(
        "\n   {:<12} {:>14} {:>14} {:>16} {:>8}",
        "dataset", "plainMR(ms)", "iterMR(ms)", "memflow(ms)", "spilled"
    );

    let mut crossover_ok_small = true;
    let mut crossover_ok_large = false;
    for preset in i2mr_datagen::graph::GraphPreset::ALL {
        let graph = i2mr_datagen::graph::GraphGen::preset(preset, 0x12).generate();

        let (_, plain) = pagerank::plainmr(&pool, &cfg, &graph, 0.85, iters, 0.0).unwrap();
        let (_, iter) = pagerank::itermr(&pool, &cfg, &graph, &spec, iters, 0.0).unwrap();

        let ctx =
            i2mr_memflow::MemFlowCtx::new(budget, scratch(&format!("fig12-{}", preset.name())))
                .unwrap();
        let (_, spark) = pagerank::memflow(&ctx, &graph, cfg.n_reduce, 0.85, iters).unwrap();
        let spilled = ctx.metrics().spills;

        let p = plain.modeled(&model);
        let i = iter.modeled(&model);
        let s = spark.modeled(&model);
        println!(
            "   {:<12} {:>14} {:>14} {:>16} {:>8}",
            preset.name(),
            ms(p),
            ms(i),
            ms(s),
            spilled
        );

        match preset {
            i2mr_datagen::graph::GraphPreset::ClueWebXs => {
                // Small data: in-memory processing wins (or at least matches).
                crossover_ok_small &= s <= i.max(p);
            }
            i2mr_datagen::graph::GraphPreset::ClueWebL => {
                // Large data: spills happen and iterMR beats memflow.
                crossover_ok_large = spilled > 0 && i < s;
            }
            _ => {}
        }
    }

    println!();
    println!(
        "   shape: memflow fastest on ClueWeb-xs : {}",
        if crossover_ok_small { "OK" } else { "MISMATCH" }
    );
    println!(
        "   shape: iterMR beats memflow on ClueWeb-l (spilling) : {}",
        if crossover_ok_large { "OK" } else { "MISMATCH" }
    );
    assert!(
        crossover_ok_small && crossover_ok_large,
        "Fig. 12 crossover not reproduced"
    );
}
