//! Microbench of the telemetry plane's overhead: the **same seeded
//! PageRank pipeline** (map → shuffle → sort → reduce through the
//! iterative engine) run with tracing `Off`, `Counters`, and `Full`.
//!
//! The telemetry plane's shipping bar is that observability is cheap
//! enough to leave on: `Full` span retention (per-worker ring buffers,
//! one lock-light append per task span / stage sample) must stay within
//! 5% of `Off` on the data-plane hot path, i.e. the `off`/`full` ratio
//! gated by `scripts/bench_check.sh` must stay >= 0.95x. `counters` rides
//! along un-gated as the middle point: per-kind atomic counts, no spans.
//!
//! Each timed sample is one full session lifecycle — build (recorder
//! allocation), 25 fixed iterations, finish (ring drain + export) — so
//! every cost `Full` adds is inside the measurement, not hidden in setup.
//!
//! The 5% bar is tighter than shared-runner load drift, so the variants
//! are measured in **three interleaved rounds** (`a`/`b`/`c` params) with
//! the variant order reversed on the middle round: the gate's geomean of
//! the per-round `off`/`full` ratios cancels linear drift that a single
//! sequential off-then-full pass would book as tracing overhead.
//!
//! The workload is **fixed-size** (no `sized()` scaling): the gated
//! quantity is a per-event-overhead ratio, which must not shift with
//! `I2MR_BENCH_QUICK`. Snapshot lands in `BENCH_trace.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use i2mr_algos::pagerank::PageRank;
use i2mr_common::telemetry::{EventKind, TelemetryConfig, TelemetryMode, TraceLog};
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_core::{build_partitioned, PartitionedData};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::{JobConfig, WorkerPool};

const N_PARTS: usize = 4;
const N_VERTICES: u64 = 4_000;
const N_EDGES: u64 = N_VERTICES * 7;
/// Iteration count is pinned (epsilon far below reach) so every variant
/// does the identical amount of data-plane work.
const ITERS: u64 = 25;

type PrData = PartitionedData<u64, Vec<u64>, u64, f64>;

/// One full session lifecycle under the given telemetry mode; returns the
/// finished trace so its drain cost is part of the measurement.
fn run_once(pool: &WorkerPool, data: &mut PrData, mode: TelemetryMode) -> Option<TraceLog> {
    let spec = PageRank::default();
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(JobConfig::symmetric(N_PARTS))
        .iter(IterParams {
            max_iterations: ITERS,
            epsilon: 1e-15,
            preserve: PreserveMode::None,
        })
        .telemetry(TelemetryConfig::with_mode(mode))
        .build()
        .unwrap();
    session.run_initial(data).unwrap();
    session.finish().unwrap().trace
}

fn bench_pipeline(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let spec = PageRank::default();
    let graph = GraphGen::new(N_VERTICES, N_EDGES, 0x7ACE5).generate();
    let pristine = build_partitioned(&spec, N_PARTS, graph);

    let variants = [
        (TelemetryMode::Off, "off"),
        (TelemetryMode::Counters, "counters"),
        (TelemetryMode::Full, "full"),
    ];
    let mut g = c.benchmark_group("micro_trace/pipeline");
    for (i, round) in ["a", "b", "c"].into_iter().enumerate() {
        // Reverse the variant order on odd rounds so monotone machine-load
        // drift hits `off` and `full` symmetrically across the rounds.
        let mut order = variants;
        if i % 2 == 1 {
            order.reverse();
        }
        for (mode, tag) in order {
            g.bench_function(BenchmarkId::new(tag, round), |b| {
                b.iter_batched(
                    || pristine.clone(),
                    |mut data| run_once(&pool, &mut data, mode),
                    BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

/// Shape + equivalence: `Full` must land on f64-bitwise-identical state
/// (tracing reads the run, it never steers it), the trace must be
/// well-formed with zero drops at this fixture size, and the headline
/// `off`/`full` ratio must clear the 0.95x floor `scripts/bench_check.sh`
/// enforces.
fn summarize(_c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let spec = PageRank::default();
    let graph = GraphGen::new(N_VERTICES, N_EDGES, 0x7ACE5).generate();
    let pristine = build_partitioned(&spec, N_PARTS, graph);

    let mut data_off = pristine.clone();
    let trace_off = run_once(&pool, &mut data_off, TelemetryMode::Off);
    assert!(trace_off.is_none(), "Off must not allocate a recorder");
    let mut data_full = pristine;
    let log =
        run_once(&pool, &mut data_full, TelemetryMode::Full).expect("Full must hand back a trace");
    assert_eq!(
        data_off.state, data_full.state,
        "tracing diverged from Off: the recorder must not steer the run"
    );
    log.validate().expect("trace well-formed");
    assert_eq!(log.dropped(), 0, "events dropped at fixture size");
    let spans = log.count_matching(|k| matches!(k, EventKind::TaskStart { .. }));
    assert!(spans > 0, "no task spans recorded");

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let ratios: Vec<f64> = ["a", "b", "c"]
        .iter()
        .filter_map(|round| {
            let off = median(&format!("micro_trace/pipeline/off/{round}"))?;
            let full = median(&format!("micro_trace/pipeline/full/{round}"))?;
            (full > 0.0).then(|| off / full)
        })
        .collect();
    if ratios.is_empty() {
        println!("shape: pipeline medians missing .. SKIPPED");
    } else {
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        let ok = if geomean >= 0.95 { "OK" } else { "MISMATCH" };
        println!(
            "shape: {ITERS}-iteration pipeline at {N_VERTICES} vertices: full tracing \
             {geomean:.3}x vs off over {} rounds ({spans} task spans, target >= 0.95x) .. {ok}",
            ratios.len()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, summarize
}
criterion_main!(benches);
