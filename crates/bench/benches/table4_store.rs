//! Table 4: performance optimizations in the MRBG-Store.
//!
//! Four query strategies, enabled one by one, during a multi-batch
//! incremental merge workload (iterative PageRank-style access pattern):
//!
//! | strategy | paper result |
//! |---|---|
//! | index-only | smallest bytes read, most reads (seeks) |
//! | single-fix-window | catastrophic bytes read (window thrashes between batches) |
//! | multi-fix-window | far fewer reads, moderate bytes |
//! | multi-dynamic-window | fewest wasted bytes, best time |

use i2mr_bench::{banner, sized};
use i2mr_common::hash::MapKey;
use i2mr_store::format::{Chunk, ChunkEntry};
use i2mr_store::merge::{DeltaChunk, DeltaEntry};
use i2mr_store::query::QueryStrategy;
use i2mr_store::store::{MrbgStore, StoreConfig};
use std::time::Instant;

/// Build a store with `n_keys` chunks and `batches` merge rounds touching
/// alternating halves — the multi-batch layout of §5.2.
fn build(tag: &str, n_keys: u64, batches: u32) -> MrbgStore {
    let dir = std::env::temp_dir().join(format!("i2mr-table4-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = MrbgStore::create(&dir, StoreConfig::default()).unwrap();
    let initial: Vec<Chunk> = (0..n_keys)
        .map(|k| {
            Chunk::new(
                key_bytes(k),
                (0..8u128)
                    .map(|m| ChunkEntry {
                        mk: MapKey(m),
                        value: vec![0u8; 64],
                    })
                    .collect(),
            )
        })
        .collect();
    store.append_batch(initial).unwrap();
    for round in 1..batches {
        let deltas: Vec<DeltaChunk> = (0..n_keys)
            .filter(|k| k % 2 == (round % 2) as u64)
            .map(|k| DeltaChunk {
                key: key_bytes(k),
                entries: vec![DeltaEntry::Insert(
                    MapKey(100 + round as u128),
                    vec![1u8; 64],
                )],
            })
            .collect();
        store.merge_apply(deltas).unwrap();
    }
    store
}

fn key_bytes(k: u64) -> Vec<u8> {
    format!("k{k:08}").into_bytes()
}

fn main() {
    let n_keys = sized(4000);
    let batches = 6u32;
    banner(
        "Table 4",
        "MRBG-Store query strategies during one merge pass",
        &format!("{n_keys} chunks, {batches} batches of sorted chunks, ~30% of keys queried"),
    );

    // The merge workload: clustered updates — runs of ~33 adjacent keys
    // separated by unqueried gaps (deltas cluster on hot regions of the
    // key space), arriving in the sorted order the shuffle produces. This
    // is the access pattern where window choice matters: dynamic windows
    // batch each run into one I/O and stop at the gap, while fixed windows
    // read past the run's end into useless bytes.
    let make_deltas = || -> Vec<DeltaChunk> {
        (0..n_keys)
            .filter(|k| (k / 33) % 3 == 0)
            .map(|k| DeltaChunk {
                key: key_bytes(k),
                entries: vec![DeltaEntry::Insert(MapKey(999), vec![2u8; 64])],
            })
            .collect()
    };

    println!(
        "   {:<24} {:>9} {:>12} {:>10}",
        "technique", "# reads", "read KB", "time (ms)"
    );
    let mut results = Vec::new();
    for (name, strategy) in [
        ("index-only", QueryStrategy::IndexOnly),
        (
            "single-fix-window",
            QueryStrategy::SingleFixWindow { window: 16 * 1024 },
        ),
        (
            "multi-fix-window",
            QueryStrategy::MultiFixWindow { window: 16 * 1024 },
        ),
        (
            "multi-dynamic-window",
            QueryStrategy::MultiDynamicWindow {
                gap_threshold: 2048,
            },
        ),
    ] {
        let mut store = build(name, n_keys, batches);
        store.set_strategy(strategy);
        store.reset_io_stats();
        let t = Instant::now();
        store.merge_apply(make_deltas()).unwrap();
        let elapsed = t.elapsed();
        let io = store.io_stats();
        println!(
            "   {:<24} {:>9} {:>12.1} {:>10.1}",
            name,
            io.reads,
            io.bytes_read as f64 / 1024.0,
            elapsed.as_secs_f64() * 1e3
        );
        results.push((name, io.reads, io.bytes_read, elapsed));
    }

    // Shape checks (paper Table 4).
    let get = |n: &str| *results.iter().find(|r| r.0 == n).unwrap();
    let index_only = get("index-only");
    let single = get("single-fix-window");
    let multi_fix = get("multi-fix-window");
    let dynamic = get("multi-dynamic-window");

    let mut ok = true;
    let mut shape = |cond: bool, msg: &str| {
        println!("   shape: {msg} : {}", if cond { "OK" } else { "MISMATCH" });
        ok &= cond;
    };
    shape(index_only.1 > dynamic.1, "index-only issues the most reads");
    shape(
        index_only.2 <= dynamic.2,
        "index-only reads the fewest bytes",
    );
    shape(
        single.2 > multi_fix.2,
        "single-fix-window wastes more bytes than multi-fix-window",
    );
    shape(
        dynamic.2 <= multi_fix.2,
        "dynamic windows read no more than fixed windows",
    );
    shape(
        dynamic.1 < index_only.1,
        "dynamic windows batch reads (fewer seeks than index-only)",
    );
    assert!(ok, "Table 4 shape checks failed");
}
