//! Fig. 13: fault recovery progress.
//!
//! The paper runs PageRank with 64 prime map + 64 prime reduce tasks over
//! 7 iterations, randomly injects 3 task errors, and plots per-task
//! execution progress: all failed tasks recover within ~12 s (heartbeat
//! detection + relaunch) and failures that finish before the iteration
//! barrier do not prolong the computation.
//!
//! Here: 16+16 prime tasks, 7 iterations, 3 injected failures, a scaled
//! 40 ms detection delay. The timeline (start/fail/recover/finish per task
//! attempt) is printed exactly as the figure's raw data.

use i2mr_algos::pagerank::PageRank;
use i2mr_bench::{banner, sized};
use i2mr_core::iter_engine::{build_partitioned, PartitionedIterEngine};
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::fault::{FaultPlan, FaultSpec, TaskEventKind, TaskKind};
use i2mr_mapred::{JobConfig, WorkerPool};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let n_tasks = 16usize;
    let detection = Duration::from_millis(40);
    banner(
        "Fig. 13",
        "fault recovery progress (task timeline with injected errors)",
        &format!(
            "PageRank, {n_tasks} prime map + {n_tasks} prime reduce tasks, 7 iterations, 3 injected faults, {}ms detection delay",
            detection.as_millis()
        ),
    );

    let graph = GraphGen::new(sized(3000), sized(24_000), 0xF13).generate();
    let spec = PageRank::default();
    let cfg = JobConfig {
        n_map: n_tasks,
        n_reduce: n_tasks,
        n_workers: 8,
        max_attempts: 3,
        detection_delay: detection,
    };

    // The paper's three errors: map task in iteration 3, reduce task in
    // iteration 6, map task in iteration 7.
    let plan = Arc::new(FaultPlan::new(vec![
        FaultSpec {
            kind: TaskKind::Map,
            index: 7 % n_tasks,
            iteration: Some(3),
            attempt: 1,
        },
        FaultSpec {
            kind: TaskKind::Reduce,
            index: 11 % n_tasks,
            iteration: Some(6),
            attempt: 1,
        },
        FaultSpec {
            kind: TaskKind::Map,
            index: 14 % n_tasks,
            iteration: Some(7),
            attempt: 1,
        },
    ]));
    let pool = WorkerPool::with_faults(cfg.n_workers, cfg.max_attempts, detection, plan);

    let engine = PartitionedIterEngine::new(
        &spec,
        cfg.clone(),
        IterParams {
            max_iterations: 7,
            epsilon: 0.0,
            preserve: PreserveMode::None,
        },
    )
    .unwrap();
    let mut data = build_partitioned(&spec, n_tasks, graph.clone());
    let report = engine.run(&pool, &mut data, None).expect("run with faults");
    assert_eq!(report.iterations.len(), 7, "all 7 iterations completed");

    // Sanity: the faulty run still computes correct ranks.
    let clean_pool = WorkerPool::new(cfg.n_workers);
    let clean_engine = PartitionedIterEngine::new(
        &spec,
        cfg.clone(),
        IterParams {
            max_iterations: 7,
            epsilon: 0.0,
            preserve: PreserveMode::None,
        },
    )
    .unwrap();
    let mut clean = build_partitioned(&spec, n_tasks, graph);
    clean_engine.run(&clean_pool, &mut clean, None).unwrap();
    let a = data.state_snapshot();
    let b = clean.state_snapshot();
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|((_, x), (_, y))| (x - y).abs())
        .fold(0.0, f64::max);
    assert!(max_diff < 1e-12, "faulty run diverged: {max_diff}");

    let timeline = pool.take_timeline();
    println!("\n   task timeline (failures and their recoveries):");
    for ev in timeline.events() {
        if ev.kind == TaskEventKind::Fail || ev.attempt > 1 {
            println!(
                "   t={:>8.1}ms worker={} {} attempt={} {:?}",
                ev.at.as_secs_f64() * 1e3,
                ev.worker,
                ev.task.label(),
                ev.attempt,
                ev.kind
            );
        }
    }

    let failures = timeline.failures();
    let recoveries = timeline.recovery_latencies();
    println!("\n   injected failures observed: {}", failures.len());
    for (task, latency) in &recoveries {
        println!(
            "   {} recovered in {:.1} ms (paper: within 12 s)",
            task.label(),
            latency.as_secs_f64() * 1e3
        );
    }

    let mut ok = true;
    let mut shape = |cond: bool, msg: &str| {
        println!("   shape: {msg} : {}", if cond { "OK" } else { "MISMATCH" });
        ok &= cond;
    };
    shape(failures.len() == 3, "exactly 3 injected failures fired");
    shape(recoveries.len() == 3, "every failure has a recovery");
    shape(
        recoveries
            .iter()
            .all(|(_, l)| *l >= detection && *l < detection * 20),
        "recovery latency = detection delay + relaunch (bounded)",
    );
    shape(
        max_diff < 1e-12,
        "failures do not change the computed result",
    );
    assert!(ok, "Fig. 13 shape checks failed");
}
