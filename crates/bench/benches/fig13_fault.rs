//! Fig. 13: fault recovery progress.
//!
//! The paper runs PageRank with 64 prime map + 64 prime reduce tasks over
//! 7 iterations, randomly injects 3 task errors, and plots per-task
//! execution progress: all failed tasks recover within ~12 s (heartbeat
//! detection + relaunch) and failures that finish before the iteration
//! barrier do not prolong the computation.
//!
//! Here the figure is split into a measured pair and a shape check:
//!
//! * **`fig13/run`** — the same 7-iteration PageRank job, `faultfree`
//!   (no injection) vs `faulted` (the paper's 3 task errors, with a
//!   scaled-down detection delay so recovery cost is proportionate to the
//!   scaled run length). `scripts/bench_check.sh` gates on the
//!   faultfree→faulted "speedup" staying ≥ 0.667× — i.e. the faulted run
//!   may cost at most 1.5× the fault-free run, the figure's claim that
//!   recovery is bounded by detection + relaunch rather than a rerun.
//! * **`summarize`** — the original figure shape at the paper-faithful
//!   40 ms detection delay: exactly 3 failures fire, each recovers within
//!   a bounded latency window, and the faulty run's ranks are bit-exact
//!   against a clean run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use i2mr_algos::pagerank::PageRank;
use i2mr_bench::sized;
use i2mr_core::iter_engine::build_partitioned;
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::fault::{FaultPlan, FaultSpec, TaskKind};
use i2mr_mapred::{JobConfig, WorkerPool};
use std::sync::Arc;
use std::time::Duration;

const N_TASKS: usize = 16;
const N_WORKERS: usize = 8;
const ITERS: u64 = 7;

fn job_config(detection: Duration) -> JobConfig {
    JobConfig {
        n_map: N_TASKS,
        n_reduce: N_TASKS,
        n_workers: N_WORKERS,
        max_attempts: 3,
        detection_delay: detection,
    }
}

/// The paper's three errors: map task in iteration 3, reduce task in
/// iteration 6, map task in iteration 7 (all on their first attempt).
fn paper_faults() -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(vec![
        FaultSpec {
            kind: TaskKind::Map,
            index: 7 % N_TASKS,
            iteration: Some(3),
            attempt: 1,
        },
        FaultSpec {
            kind: TaskKind::Reduce,
            index: 11 % N_TASKS,
            iteration: Some(6),
            attempt: 1,
        },
        FaultSpec {
            kind: TaskKind::Map,
            index: 14 % N_TASKS,
            iteration: Some(7),
            attempt: 1,
        },
    ]))
}

/// One full 7-iteration PageRank job on `pool`; returns the final ranks.
fn run_job(pool: &WorkerPool, cfg: &JobConfig) -> Vec<(u64, f64)> {
    let spec = PageRank::default();
    let graph = GraphGen::new(sized(3000), sized(24_000), 0xF13).generate();
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: ITERS,
            epsilon: 0.0,
            preserve: PreserveMode::None,
        })
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N_TASKS, graph);
    let report = session.run_initial(&mut data).expect("run");
    assert_eq!(report.iterations.len(), ITERS as usize);
    data.state_snapshot()
}

/// Measured pair: the identical job with and without the injected faults.
/// The bench detection delay is scaled to the job length (the paper's 12 s
/// heartbeat against multi-minute iterations ≈ 2 ms against this run), so
/// the gated ratio measures *bounded recovery*, not an arbitrary sleep.
fn bench_run(c: &mut Criterion) {
    let detection = Duration::from_millis(2);
    let cfg = job_config(detection);
    let clean_pool = WorkerPool::new(N_WORKERS);
    let faulty_pool =
        WorkerPool::with_faults(N_WORKERS, cfg.max_attempts, detection, paper_faults());

    let mut g = c.benchmark_group("fig13/run");
    g.bench_function(BenchmarkId::new("faultfree", N_TASKS), |b| {
        b.iter(|| black_box(run_job(&clean_pool, &cfg)))
    });
    g.bench_function(BenchmarkId::new("faulted", N_TASKS), |b| {
        b.iter(|| black_box(run_job(&faulty_pool, &cfg)))
    });
    g.finish();
}

/// Figure shape at the paper-faithful 40 ms detection delay: 3 failures,
/// each recovered within a bounded window, result bit-exact vs clean.
fn summarize(_c: &mut Criterion) {
    let detection = Duration::from_millis(40);
    let cfg = job_config(detection);
    let faulty_pool =
        WorkerPool::with_faults(N_WORKERS, cfg.max_attempts, detection, paper_faults());
    let faulted = run_job(&faulty_pool, &cfg);
    let clean_pool = WorkerPool::new(N_WORKERS);
    let clean = run_job(&clean_pool, &cfg);

    let max_diff = faulted
        .iter()
        .zip(&clean)
        .map(|((_, x), (_, y))| (x - y).abs())
        .fold(0.0, f64::max);

    let timeline = faulty_pool.take_timeline();
    let failures = timeline.failures();
    let recoveries = timeline.recovery_latencies();
    for (task, latency) in &recoveries {
        println!(
            "   {} recovered in {:.1} ms (paper: within 12 s)",
            task.label(),
            latency.as_secs_f64() * 1e3
        );
    }

    let mut ok = true;
    let mut shape = |cond: bool, msg: &str| {
        println!("shape: {msg} .. {}", if cond { "OK" } else { "MISMATCH" });
        ok &= cond;
    };
    shape(failures.len() == 3, "exactly 3 injected failures fired");
    shape(recoveries.len() == 3, "every failure has a recovery");
    shape(
        recoveries
            .iter()
            .all(|(_, l)| *l >= detection && *l < detection * 20),
        "recovery latency = detection delay + relaunch (bounded)",
    );
    shape(
        max_diff < 1e-12,
        "failures do not change the computed result",
    );

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let free = median(&format!("fig13/run/faultfree/{N_TASKS}"));
    let faulty = median(&format!("fig13/run/faulted/{N_TASKS}"));
    if let (Some(f), Some(x)) = (free, faulty) {
        if x > 0.0 {
            let ratio = f / x;
            let verdict = if ratio >= 0.667 { "OK" } else { "MISMATCH" };
            println!(
                "shape: faulted run costs {:.2}x the fault-free run \
                 (recovery bounded: target <= 1.5x, ratio >= 0.667) .. {verdict}",
                x / f
            );
            ok &= ratio >= 0.667;
        }
    }
    assert!(ok, "Fig. 13 shape checks failed");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_run, summarize
}
criterion_main!(benches);
