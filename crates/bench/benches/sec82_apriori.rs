//! §8.2 (one-step): APriori re-computation vs i2MapReduce incremental.
//!
//! Paper: "MapReduce re-computation takes 1608 seconds. In contrast,
//! i2MapReduce takes only 131 seconds. Fine-grain incremental processing
//! leads to a 12x speedup." Delta = the last week of tweets (7.9 %,
//! insertion-only) with the accumulator-Reduce optimization.

use i2mr_algos::apriori::{self, AprioriEngine, Candidates};
use i2mr_bench::{banner, check_shape, default_model, print_engine_table, sized};
use i2mr_datagen::delta::tweets_append;
use i2mr_datagen::text::TweetGen;
use i2mr_mapred::{JobConfig, WorkerPool};

fn main() {
    let base_tweets = sized(40_000);
    let gen = TweetGen::new(3_000, 0xA9);
    let corpus = gen.generate(0, base_tweets);
    let candidates = Candidates::generate(&corpus, 24);
    banner(
        "Sec 8.2 (one-step)",
        "APriori: plain recompute vs i2MR accumulator-incremental",
        &format!(
            "{} tweets, {} candidate pairs, 7.9% append-only delta (paper: 52M tweets)",
            base_tweets,
            candidates.len()
        ),
    );

    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let delta = tweets_append(&gen, base_tweets, 0.079);
    let updated = delta.apply_to(&corpus);

    // Plain MapReduce recomputes the whole job on the updated corpus.
    let (plain_counts, plain_run) =
        apriori::plainmr(&pool, &cfg, &updated, &candidates).expect("plainmr");

    // i2MapReduce: initial run on the base corpus (not timed against the
    // refresh), then the incremental refresh over the delta only.
    let mut engine = AprioriEngine::new(cfg.clone(), candidates.clone()).expect("engine");
    engine.initial(&pool, &corpus).expect("initial");
    let incr_run = engine.incremental(&pool, &delta).expect("incremental");

    assert_eq!(engine.counts(), plain_counts, "refresh must be exact");

    let model = default_model();
    let rows = vec![plain_run.clone(), incr_run.clone()];
    print_engine_table(&rows, &model);
    let speedup = plain_run.modeled(&model).as_secs_f64() / incr_run.modeled(&model).as_secs_f64();
    println!("   speedup (modeled): {speedup:.1}x   (paper: 12x)");
    println!(
        "   map invocations: plain {} vs incremental {}",
        plain_run.metrics.map_invocations, incr_run.metrics.map_invocations
    );
    check_shape("APriori", &rows, &["PlainMR recomp", "i2MR incremental"]);
    assert!(speedup > 2.0, "incremental must win decisively");
}
