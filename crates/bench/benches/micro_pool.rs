//! Microbench of the executor plane: spawn-per-call scheduling vs the
//! persistent work-stealing pool, on an 8-partition incremental-PageRank
//! iteration shape.
//!
//! The headline `micro_pool/iteration` group drives `ITERS` refresh
//! iterations of the same computation through two schedulers:
//!
//! * **spawn** — a faithful reproduction of the pre-refactor
//!   `WorkerPool::run_tasks`: every phase spawns fresh scoped threads, and
//!   store compaction runs as its own stop-phase in the between-iteration
//!   tail (the only cadence a spawn-per-call pool offers).
//! * **persistent** — the persistent executor: one `WorkerPool` serves
//!   every phase, and each iteration's compactions are submitted as
//!   detached background work (`submit_at`) that **overlaps the next
//!   iteration's map phase** and is fenced (`fence`) only before the merge
//!   that needs the shards quiescent — exactly the schedule the engines
//!   now run through `StoreManager::schedule_compactions`.
//!
//! Task bodies model the phases' *latency* (simulated I/O sleeps plus a
//! deterministic rank computation), not raw CPU: the bench measures
//! scheduling shape — how much of the compaction tail the executor hides —
//! so its spawn→persistent ratio is stable across runner core counts,
//! which is what lets `scripts/bench_check.sh` gate on it (committed floor:
//! overlap ≥ 1.3×). `summarize` additionally asserts both schedulers
//! produce **bit-identical** final ranks.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use i2mr_mapred::fault::{TaskId, TaskKind};
use i2mr_mapred::pool::{TaskSpec, WorkerPool};
use i2mr_mapred::Timeline;
use parking_lot::Mutex;
use std::time::Duration;

const N_PARTS: usize = 8;
const ITERS: u64 = 8;
const RANKS_PER_PART: usize = 256;

/// Simulated I/O latencies per task (ms). Compactions hit half the shards
/// each iteration, so the baseline pays a 6 ms stop-phase the persistent
/// executor overlaps into the next map phase.
const MAP_IO: Duration = Duration::from_millis(3);
const MERGE_IO: Duration = Duration::from_millis(1);
const COMPACT_IO: Duration = Duration::from_millis(6);

/// Shards due for "compaction" after iteration `r` (half of them).
fn compact_shards(r: u64) -> Vec<usize> {
    (0..N_PARTS).filter(|p| (*p as u64 + r) % 2 == 0).collect()
}

/// One partition's contribution pass: every rank sends a damped share to
/// its successor partition (deterministic, order-independent across
/// schedulers).
fn map_task(ranks: &[Vec<f64>], p: usize) -> Vec<f64> {
    std::thread::sleep(MAP_IO);
    let src = &ranks[p];
    let mut out = vec![0.0f64; RANKS_PER_PART];
    for (i, r) in src.iter().enumerate() {
        out[(i * 7 + 1) % RANKS_PER_PART] += 0.85 * r / 2.0;
        out[(i * 3 + 5) % RANKS_PER_PART] += 0.85 * r / 2.0;
    }
    out
}

/// Merge partition `p`: fold the contributions destined to it, in source
/// order (deterministic float summation).
fn merge_task(contribs: &[Vec<f64>], p: usize) -> Vec<f64> {
    std::thread::sleep(MERGE_IO);
    let mut next = vec![0.15f64; RANKS_PER_PART];
    // Contribution routing: partition p receives from (p + k) sources; the
    // sum order is fixed by source index regardless of scheduling.
    for src in contribs {
        for (i, c) in src.iter().enumerate() {
            if i % N_PARTS == p {
                next[i] += c;
            }
        }
    }
    next
}

fn compact_task() {
    std::thread::sleep(COMPACT_IO);
}

fn initial_ranks() -> Vec<Vec<f64>> {
    (0..N_PARTS)
        .map(|p| {
            (0..RANKS_PER_PART)
                .map(|i| 1.0 + ((p + i) % 10) as f64 * 0.1)
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Baseline: spawn-per-call phases, compaction as a stop-phase tail.
// ---------------------------------------------------------------------------

/// The pre-refactor scheduler: distribute tasks to per-worker run queues
/// and spawn a fresh scoped thread per worker for this one phase.
fn spawn_phase<T: Send, F: Fn(usize) -> T + Sync>(
    n_workers: usize,
    n_tasks: usize,
    f: &F,
) -> Vec<T> {
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n_tasks).map(|_| None).collect());
    crossbeam::scope(|scope| {
        for w in 0..n_workers {
            let results = &results;
            scope.spawn(move |_| {
                let mut t = w;
                while t < n_tasks {
                    let v = f(t);
                    results.lock()[t] = Some(v);
                    t += n_workers;
                }
            });
        }
    })
    .expect("spawned phase worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|v| v.expect("phase task missing"))
        .collect()
}

fn run_spawn_per_call() -> Vec<Vec<f64>> {
    let mut ranks = initial_ranks();
    for r in 1..=ITERS {
        let contribs = spawn_phase(N_PARTS, N_PARTS, &|p| map_task(&ranks, p));
        ranks = spawn_phase(N_PARTS, N_PARTS, &|p| merge_task(&contribs, p));
        // Stop-phase reclamation: the only slot a spawn-per-call pool has.
        let due = compact_shards(r);
        spawn_phase(N_PARTS, due.len(), &|_| compact_task());
    }
    ranks
}

// ---------------------------------------------------------------------------
// Persistent executor: compactions overlap the next iteration's map phase.
// ---------------------------------------------------------------------------

fn run_persistent(pool: &WorkerPool) -> Vec<Vec<f64>> {
    let mut ranks = initial_ranks();
    let mut compact_epoch = 0u64;
    for r in 1..=ITERS {
        // Map phase: runs while the previous iteration's compactions are
        // still draining on the same workers.
        let map_tasks: Vec<TaskSpec<'_, Vec<f64>>> = (0..N_PARTS)
            .map(|p| {
                let ranks = &ranks;
                TaskSpec::pinned(
                    TaskId {
                        kind: TaskKind::Map,
                        index: p,
                        iteration: r,
                    },
                    p,
                    move |_| Ok(map_task(ranks, p)),
                )
            })
            .collect();
        let contribs = pool.run_tasks(map_tasks).unwrap();

        // Fence before the merge needs the shards quiescent.
        if compact_epoch != 0 {
            pool.fence(compact_epoch).unwrap();
        }
        let merge_tasks: Vec<TaskSpec<'_, Vec<f64>>> = (0..N_PARTS)
            .map(|p| {
                let contribs = &contribs;
                TaskSpec::pinned(
                    TaskId {
                        kind: TaskKind::StoreMerge,
                        index: p,
                        iteration: r,
                    },
                    p,
                    move |_| Ok(merge_task(contribs, p)),
                )
            })
            .collect();
        ranks = pool.run_tasks(merge_tasks).unwrap();

        // Schedule this iteration's compactions as detached background
        // work; they overlap the next iteration's map phase.
        compact_epoch = pool.next_epoch();
        for p in compact_shards(r) {
            pool.submit_at(
                compact_epoch,
                TaskSpec::pinned(
                    TaskId {
                        kind: TaskKind::Compact,
                        index: p,
                        iteration: r,
                    },
                    p,
                    |_| {
                        compact_task();
                        Ok(())
                    },
                ),
            );
        }
    }
    // Settle the trailing compactions so both schedulers account for the
    // same total work.
    pool.fence(compact_epoch).unwrap();
    ranks
}

fn bench_iteration(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let mut g = c.benchmark_group("micro_pool/iteration");
    g.bench_function(BenchmarkId::new("spawn", N_PARTS), |b| {
        b.iter(|| black_box(run_spawn_per_call()))
    });
    g.bench_function(BenchmarkId::new("persistent", N_PARTS), |b| {
        b.iter(|| black_box(run_persistent(&pool)))
    });
    g.finish();
}

/// Raw dispatch overhead: 64 trivial tasks through fresh scoped threads vs
/// the warm persistent pool. Recorded for the snapshot but deliberately
/// named outside the gate's variant pairs (absolute spawn cost is too
/// machine-dependent to gate on).
fn bench_dispatch(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let mut g = c.benchmark_group("micro_pool/dispatch_64");
    g.bench_function(BenchmarkId::new("fresh", N_PARTS), |b| {
        b.iter(|| black_box(spawn_phase(N_PARTS, 64, &|t| t * 2)))
    });
    g.bench_function(BenchmarkId::new("warm", N_PARTS), |b| {
        b.iter(|| {
            let tasks: Vec<TaskSpec<usize>> = (0..64)
                .map(|t| {
                    TaskSpec::new(
                        TaskId {
                            kind: TaskKind::Map,
                            index: t,
                            iteration: 0,
                        },
                        move |_| Ok(t * 2),
                    )
                })
                .collect();
            black_box(pool.run_tasks(tasks).unwrap())
        })
    });
    g.finish();
}

/// Shape + equivalence: both schedulers produce bit-identical ranks, the
/// persistent executor actually overlapped (compact tasks ran concurrently
/// with the following iteration's maps), and the overlap speedup clears
/// the ≥ 1.3× target `scripts/bench_check.sh` gates on.
fn summarize(_c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let spawn_ranks = run_spawn_per_call();
    let persistent_ranks = run_persistent(&pool);
    assert_eq!(
        spawn_ranks, persistent_ranks,
        "schedulers diverged: scheduling must not change the computation"
    );

    // Overlap proof from the recorded timeline: some Compact task of
    // iteration r finishes after some Map task of iteration r+1 started.
    let tl: Timeline = pool.take_timeline();
    let overlapped = tl.events().iter().any(|c| {
        c.task.kind == TaskKind::Compact
            && c.kind == i2mr_mapred::TaskEventKind::Finish
            && tl.events().iter().any(|m| {
                m.task.kind == TaskKind::Map
                    && m.task.iteration == c.task.iteration + 1
                    && m.kind == i2mr_mapred::TaskEventKind::Start
                    && m.at < c.at
            })
    });
    assert!(
        overlapped,
        "no compaction overlapped the following map phase"
    );

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let spawn = median(&format!("micro_pool/iteration/spawn/{N_PARTS}"));
    let persistent = median(&format!("micro_pool/iteration/persistent/{N_PARTS}"));
    match (spawn, persistent) {
        (Some(s), Some(p)) if p > 0.0 => {
            let speedup = s / p;
            let ok = if speedup >= 1.3 { "OK" } else { "MISMATCH" };
            println!(
                "shape: {ITERS}-iteration incremental PageRank at {N_PARTS} partitions: \
                 persistent executor with cross-iteration overlap {speedup:.2}x faster than \
                 spawn-per-call with stop-phase compaction (target >= 1.3x) .. {ok}"
            );
        }
        _ => println!("shape: iteration medians missing .. SKIPPED"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_iteration, bench_dispatch, summarize
}
criterion_main!(benches);
