//! Fig. 9: run time of the individual MapReduce stages (map, shuffle,
//! sort, reduce) summed across all iterations, for PageRank.
//!
//! Paper findings reproduced here:
//! * iterMR cuts map time (no structure parsing) and shuffle time (no
//!   structure shuffling) vs plainMR;
//! * i2MR cuts map/shuffle/sort much further (only delta-affected
//!   instances run), but its **reduce stage exceeds iterMR's** — the cost
//!   of accessing and updating the MRBGraph file in the MRBG-Store.
//!
//! The paper inflates ClueWeb node ids to long strings so the structure
//! data dominates; we reproduce that regime with a padded PageRank spec
//! whose structure values carry the same per-edge payload.

use i2mr_bench::{banner, scratch, sized};
use i2mr_common::metrics::Stage;
use i2mr_core::incr_iter::IncrParams;
use i2mr_core::iter_engine::build_partitioned;
use i2mr_core::iterative::{DependencyKind, IterParams, IterativeSpec, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_datagen::delta::{graph_delta, DeltaSpec};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::job::MapReduceJob;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_mapred::{JobConfig, WorkerPool};
use i2mr_store::runtime::StoreManager;

/// PageRank whose structure values carry string padding per out-edge — the
/// paper's "substituted all node identifiers with longer strings" device.
struct PaddedRank;

type PaddedSv = (Vec<u64>, String);

impl IterativeSpec for PaddedRank {
    type SK = u64;
    type SV = PaddedSv;
    type DK = u64;
    type DV = f64;
    type V2 = f64;

    fn project(&self, sk: &u64) -> u64 {
        *sk
    }
    fn map(&self, _sk: &u64, sv: &PaddedSv, _dk: &u64, dv: &f64, out: &mut Emitter<u64, f64>) {
        let links = &sv.0;
        if links.is_empty() {
            return;
        }
        let share = dv / links.len() as f64;
        for j in links {
            out.emit(*j, share);
        }
    }
    fn reduce(&self, _dk: &u64, _prev: &f64, values: Values<'_, u64, f64>) -> f64 {
        0.15 + 0.85 * values.iter().sum::<f64>()
    }
    fn init(&self, _dk: &u64) -> f64 {
        1.0
    }
    fn difference(&self, curr: &f64, prev: &f64) -> f64 {
        (curr - prev).abs()
    }
    fn dependency(&self) -> DependencyKind {
        DependencyKind::OneToOne
    }
}

fn pad_graph(graph: &[(u64, Vec<u64>)]) -> Vec<(u64, PaddedSv)> {
    graph
        .iter()
        .map(|(v, outs)| {
            let pad = "x".repeat(24 * outs.len().max(1));
            (*v, (outs.clone(), pad))
        })
        .collect()
}

fn print_stages(name: &str, st: &i2mr_common::metrics::StageTimes) {
    println!(
        "   {:<22} map {:>8.1}ms  shuffle {:>8.1}ms  sort {:>8.1}ms  reduce {:>8.1}ms",
        name,
        st.map.as_secs_f64() * 1e3,
        st.shuffle.as_secs_f64() * 1e3,
        st.sort.as_secs_f64() * 1e3,
        st.reduce.as_secs_f64() * 1e3,
    );
}

fn main() {
    let iters = 10u64;
    banner(
        "Fig. 9",
        "per-stage time of PageRank (summed across iterations)",
        &format!(
            "{}-vertex padded graph, {} iterations, 10% delta for i2MR",
            sized(2000),
            iters
        ),
    );
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let graph = GraphGen::new(sized(2000), sized(16_000), 0x99).generate();
    let padded = pad_graph(&graph);

    // --------------------------- plainMR ---------------------------
    // Map input <i, Ni|Ri> with the padding travelling through shuffle.
    let mut plain_stages = i2mr_common::metrics::StageTimes::default();
    {
        type Rec = (PaddedSv, f64);
        let mapper = |i: &u64, rec: &Rec, out: &mut Emitter<u64, Rec>| {
            let ((links, pad), rank) = rec;
            out.emit(*i, ((links.clone(), pad.clone()), f64::NAN));
            if !links.is_empty() {
                let share = rank / links.len() as f64;
                for j in links {
                    out.emit(*j, ((Vec::new(), String::new()), share));
                }
            }
        };
        let reducer = |j: &u64, vs: Values<u64, Rec>, out: &mut Emitter<u64, Rec>| {
            let mut sv: PaddedSv = (Vec::new(), String::new());
            let mut sum = 0.0;
            for (s, share) in vs {
                if share.is_nan() {
                    sv = s.clone();
                } else {
                    sum += share;
                }
            }
            out.emit(*j, (sv, 0.15 + 0.85 * sum));
        };
        let mut input: Vec<(u64, Rec)> = padded
            .iter()
            .map(|(i, sv)| (*i, (sv.clone(), 1.0)))
            .collect();
        for it in 0..iters {
            let job = MapReduceJob::new(&cfg, &mapper, &reducer, &HashPartitioner);
            let run = job.run(&pool, &input, it).expect("plain iteration");
            plain_stages += run.metrics.stages;
            input = run.flat_output();
            input.sort_by_key(|(k, _)| *k);
        }
    }

    // --------------------------- iterMR ---------------------------
    let spec = PaddedRank;
    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: iters,
            epsilon: 0.0,
            preserve: PreserveMode::None,
        })
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, cfg.n_reduce, padded.clone());
    let report = session.run_initial(&mut data).expect("itermr");
    let iter_stages = report.total_metrics().stages;

    // --------------------------- i2MR incremental ---------------------------
    // Converged initial run with preservation, then a 10% delta refresh.
    let dir = scratch("fig9");
    let stores = StoreManager::create(&pool, &dir, cfg.n_reduce, Default::default()).unwrap();
    let init_session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .stores_ref(&stores)
        .build()
        .unwrap();
    let mut conv = build_partitioned(&spec, cfg.n_reduce, padded.clone());
    init_session.run_initial(&mut conv).expect("initial");

    let delta_plain = graph_delta(&graph, DeltaSpec::ten_percent(0xF9));
    // Convert the unpadded delta into the padded record space.
    let mut delta = i2mr_core::delta::Delta::new();
    for r in delta_plain.records() {
        let pad = "x".repeat(24 * r.value.len().max(1));
        match r.op {
            i2mr_core::delta::Op::Insert => delta.insert(r.key, (r.value.clone(), pad)),
            i2mr_core::delta::Op::Delete => delta.delete(r.key, (r.value.clone(), pad)),
        }
    }
    let incr_session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .incr(IncrParams {
            filter_threshold: Some(1e-3),
            convergence_epsilon: 1e-5,
            max_iterations: iters,
            ..Default::default()
        })
        .stores_ref(&stores)
        .build()
        .unwrap();
    let incr_report = incr_session
        .run_incremental(&mut conv, &delta)
        .expect("incremental");
    let incr_stages = incr_report.total_metrics().stages;

    println!();
    print_stages("PlainMR recomp", &plain_stages);
    print_stages("IterMR recomp", &iter_stages);
    print_stages("i2MR incr comp", &incr_stages);

    // Shape checks (paper §8.3).
    let mut ok = true;
    for (stage, label) in [
        (Stage::Map, "map"),
        (Stage::Shuffle, "shuffle"),
        (Stage::Sort, "sort"),
    ] {
        let p = plain_stages.get(stage).as_secs_f64();
        let i = incr_stages.get(stage).as_secs_f64();
        if i < p {
            println!("   shape: i2MR {label} < plainMR {label} : OK");
        } else {
            println!("   shape: i2MR {label} ({i:.4}s) < plainMR {label} ({p:.4}s) : MISMATCH");
            ok = false;
        }
    }
    let shuffle_save = 1.0
        - iter_stages.get(Stage::Shuffle).as_secs_f64()
            / plain_stages.get(Stage::Shuffle).as_secs_f64();
    println!(
        "   iterMR shuffle saving vs plainMR: {:.0}% (paper: 74%)",
        shuffle_save * 100.0
    );
    if iter_stages.get(Stage::Shuffle) < plain_stages.get(Stage::Shuffle) {
        println!("   shape: iterMR shuffle < plainMR shuffle : OK");
    } else {
        println!("   shape: iterMR shuffle < plainMR shuffle : MISMATCH");
        ok = false;
    }
    assert!(ok, "Fig. 9 shape checks failed");
}
