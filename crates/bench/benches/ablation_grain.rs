//! Ablation benches for design choices DESIGN.md calls out.
//!
//! 1. **Grain**: kv-pair-level (i2MR) vs task-level (Incoop-style)
//!    incremental processing under scattered changes — the paper's §8.1.1
//!    claim that "without careful data partition, almost all tasks see
//!    changes, making task-level incremental processing less effective".
//! 2. **Preservation policy**: MRBGraph preserved every iteration vs
//!    re-materialized once at convergence (`PreserveMode` ablation).
//! 3. **Accumulator fast path**: accumulator Reduce vs the general
//!    MRBG-Store path on the same aggregation workload.

use i2mr_algos::pagerank::PageRank;
use i2mr_bench::{banner, scratch, sized};
use i2mr_core::accumulator::AccumulatorEngine;
use i2mr_core::delta::Delta;
use i2mr_core::iter_engine::build_partitioned;
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_core::onestep::OneStepEngine;
use i2mr_core::run::RunBuilder;
use i2mr_core::tasklevel::TaskLevelEngine;
use i2mr_datagen::graph::GraphGen;
use i2mr_datagen::text::TweetGen;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_mapred::{JobConfig, WorkerPool};
use i2mr_store::runtime::StoreManager;
use std::time::Instant;

fn wc_mapper(_k: &u64, text: &String, out: &mut Emitter<String, u64>) {
    for w in text.split_whitespace() {
        out.emit(w.to_string(), 1);
    }
}

fn wc_reducer(k: &String, vs: Values<String, u64>, out: &mut Emitter<String, u64>) {
    out.emit(k.clone(), vs.iter().sum());
}

/// Word count with per-record pre-aggregation: one emission per distinct
/// word per record. Required by the MRBGraph path, where `(K2, MK)`
/// identifies an edge — a map instance must emit one value per key
/// (paper section 3.2; the usual in-mapper-combiner formulation).
fn wc_mapper_distinct(_k: &u64, text: &String, out: &mut Emitter<String, u64>) {
    let mut counts: std::collections::BTreeMap<&str, u64> = Default::default();
    for w in text.split_whitespace() {
        *counts.entry(w).or_insert(0) += 1;
    }
    for (w, n) in counts {
        out.emit(w.to_string(), n);
    }
}

fn main() {
    banner(
        "Ablations",
        "grain (kv vs task), preservation policy, accumulator fast path",
        "word counting + PageRank workloads",
    );
    let cfg = JobConfig {
        n_map: 16,
        n_reduce: 8,
        ..Default::default()
    };
    let pool = WorkerPool::new(8);
    let mut ok = true;
    let mut shape = |cond: bool, msg: &str| {
        println!("   shape: {msg} : {}", if cond { "OK" } else { "MISMATCH" });
        ok &= cond;
    };

    // ------------------------------------------------------------------
    // 1. kv-grain vs task-grain under scattered updates
    // ------------------------------------------------------------------
    {
        let corpus = TweetGen::new(2000, 0xAB).generate(0, sized(8000));
        // Scattered delta: one record updated in every split.
        let split = corpus.len() / cfg.n_map;
        let mut delta = Delta::new();
        let mut updated = corpus.clone();
        for s in 0..cfg.n_map {
            let idx = s * split;
            let new_text = format!("{} scattered", corpus[idx].1);
            delta.update(corpus[idx].0, corpus[idx].1.clone(), new_text.clone());
            updated[idx].1 = new_text;
        }

        // kv-grain: fine-grain one-step engine.
        let mut fine: OneStepEngine<u64, String, String, u64, String, u64> =
            OneStepEngine::create(&pool, scratch("abl-fine"), cfg.clone(), Default::default())
                .unwrap();
        fine.initial(&corpus, &wc_mapper, &HashPartitioner, &wc_reducer)
            .unwrap();
        let m_fine = fine
            .incremental(&delta, &wc_mapper, &HashPartitioner, &wc_reducer)
            .unwrap();

        // task-grain: Incoop-style memoization over the complete input.
        let mut coarse: TaskLevelEngine<u64, String, String, u64, String, u64> =
            TaskLevelEngine::new(cfg.clone()).unwrap();
        coarse
            .run(&pool, &corpus, &wc_mapper, &HashPartitioner, &wc_reducer)
            .unwrap();
        let (_, m_coarse) = coarse
            .run(&pool, &updated, &wc_mapper, &HashPartitioner, &wc_reducer)
            .unwrap();

        println!("\n -- grain ablation: scattered updates (1 record per split) --");
        println!(
            "   kv-grain   : {:>8} map invocations, {:>8} reduce invocations",
            m_fine.map_invocations, m_fine.reduce_invocations
        );
        println!(
            "   task-grain : {:>8} map invocations, {:>8} reduce invocations (reused {}/{} map tasks)",
            m_coarse.map_invocations,
            m_coarse.reduce_invocations,
            coarse.last_stats.map_tasks_reused,
            coarse.last_stats.map_tasks_total
        );
        shape(
            coarse.last_stats.map_tasks_reused == 0,
            "scattered changes dirty every task (task-level reuse = 0)",
        );
        shape(
            m_fine.map_invocations * 10 < m_coarse.map_invocations,
            "kv-grain re-maps >10x fewer records than task-grain",
        );
    }

    // ------------------------------------------------------------------
    // 2. preservation policy: every iteration vs final only
    // ------------------------------------------------------------------
    {
        let graph = GraphGen::new(sized(2000), sized(16_000), 0xCD).generate();
        let spec = PageRank::default();
        // The iterative engine co-locates prime map/reduce pairs: n_map must
        // equal n_reduce.
        let cfg = JobConfig::symmetric(8);
        let mut results = Vec::new();
        for (label, mode) in [
            ("preserve-every-iteration", PreserveMode::EveryIteration),
            ("preserve-final-only", PreserveMode::FinalOnly),
        ] {
            let dir = scratch(&format!("abl-{label}"));
            let stores =
                StoreManager::create(&pool, &dir, cfg.n_reduce, Default::default()).unwrap();
            let session = RunBuilder::new(&spec)
                .pool(&pool)
                .job(cfg.clone())
                .iter(IterParams {
                    max_iterations: 30,
                    epsilon: 1e-8,
                    preserve: mode,
                })
                .stores_ref(&stores)
                .build()
                .unwrap();
            let mut data = build_partitioned(&spec, cfg.n_reduce, graph.clone());
            let t = Instant::now();
            let report = session.run_initial(&mut data).unwrap();
            let wall = t.elapsed();
            let file_bytes: u64 = stores.file_bytes();
            // Engine iterations drain shard I/O into the per-iteration
            // metrics, so the write totals live in the report now.
            let written: u64 = report.total_metrics().store_io.bytes_written;
            results.push((label, wall, file_bytes, written));
        }
        println!("\n -- preservation policy ablation (initial PageRank run) --");
        for (label, wall, file, written) in &results {
            println!(
                "   {:<26} wall {:>8.1}ms  MRBG file {:>10.1}KB  written {:>10.1}KB",
                label,
                wall.as_secs_f64() * 1e3,
                *file as f64 / 1024.0,
                *written as f64 / 1024.0
            );
        }
        shape(
            results[1].2 < results[0].2,
            "final-only leaves a far smaller MRBGraph file after the initial run",
        );
    }

    // ------------------------------------------------------------------
    // 3. accumulator fast path vs general MRBG path
    // ------------------------------------------------------------------
    {
        let corpus = TweetGen::new(2000, 0xEF).generate(0, sized(8000));
        let mut delta = Delta::new();
        for (id, text) in TweetGen::new(2000, 0xEF).generate(corpus.len() as u64, 400) {
            delta.insert(id, text);
        }

        // General path (preserves the full MRBGraph).
        let mut general: OneStepEngine<u64, String, String, u64, String, u64> =
            OneStepEngine::create(&pool, scratch("abl-gen"), cfg.clone(), Default::default())
                .unwrap();
        general
            .initial(&corpus, &wc_mapper_distinct, &HashPartitioner, &wc_reducer)
            .unwrap();
        let t = Instant::now();
        general
            .incremental(&delta, &wc_mapper_distinct, &HashPartitioner, &wc_reducer)
            .unwrap();
        let t_general = t.elapsed();
        // incremental() leaves policy-driven compaction draining in the
        // background; settle it so the measured store size is stable.
        general.store_manager().fence_compactions().unwrap();
        let general_store_bytes = general.store_file_bytes();

        // Accumulator path (preserves only the output kv-pairs).
        let mut acc: AccumulatorEngine<u64, String, String, u64> =
            AccumulatorEngine::create(cfg.clone()).unwrap();
        let sum = |a: &u64, b: &u64| a + b;
        acc.initial(&pool, &corpus, &wc_mapper_distinct, &HashPartitioner, &sum)
            .unwrap();
        let t = Instant::now();
        acc.incremental(&pool, &delta, &wc_mapper_distinct, &HashPartitioner, &sum)
            .unwrap();
        let t_acc = t.elapsed();

        // Same refreshed answer.
        let mut a: Vec<(String, u64)> = general.output().into_iter().collect();
        a.sort();
        let mut b = acc.output();
        b.sort();
        assert_eq!(a, b, "both paths must produce identical counts");

        println!("\n -- accumulator fast path ablation (insert-only WordCount delta) --");
        println!(
            "   general MRBG path : {:>8.1}ms refresh, {:>10.1}KB MRBGraph files",
            t_general.as_secs_f64() * 1e3,
            general_store_bytes as f64 / 1024.0
        );
        println!(
            "   accumulator path  : {:>8.1}ms refresh, 0KB preserved state beyond outputs",
            t_acc.as_secs_f64() * 1e3
        );
        shape(
            general_store_bytes > 0,
            "general path pays MRBGraph storage the accumulator path avoids",
        );
    }

    println!();
    assert!(ok, "ablation shape checks failed");
    println!("Ablations complete: all shape checks OK");
}
