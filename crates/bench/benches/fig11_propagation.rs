//! Fig. 11: change propagation with a 1 % delta, per iteration.
//!
//! Series: i2MR w/o CPC and with FT ∈ {0.1, 0.5, 1} (scaled).
//!
//! Paper shapes reproduced:
//! * w/o CPC, the number of propagated kv-pairs explodes within ~3
//!   iterations toward the whole key set (change propagation);
//! * with CPC it rises then falls steadily (asymmetric convergence);
//! * the first iteration is the slowest (delta-MRBGraph merge);
//! * w/o CPC's total runtime approaches full re-computation.

use i2mr_algos::pagerank::{self, PageRank};
use i2mr_bench::{banner, scratch, sized};
use i2mr_core::incr_iter::IncrParams;
use i2mr_core::iterative::PreserveMode;
use i2mr_datagen::delta::{graph_delta, DeltaSpec};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::{JobConfig, WorkerPool};

fn main() {
    let n = sized(3000);
    banner(
        "Fig. 11",
        "propagated kv-pairs and per-iteration runtime, 1% delta",
        &format!("{n}-vertex graph (paper: 20M-page ClueWeb, 1% updated)"),
    );
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let graph = GraphGen::new(n, sized(24_000), 0x11B).generate();
    let spec = PageRank::default();
    let delta = graph_delta(&graph, DeltaSpec::one_percent(0x1CE));

    let configs: [(&str, Option<f64>); 4] = [
        ("w/o CPC", None),
        ("FT=0.1", Some(1e-4)),
        ("FT=0.5", Some(5e-4)),
        ("FT=1", Some(1e-3)),
    ];

    let mut series = Vec::new();
    for (label, ft) in configs {
        let dir = scratch(&format!("fig11-{label}"));
        let (mut data, stores, _) = pagerank::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            &spec,
            &dir,
            Default::default(),
            300,
            1e-11,
            PreserveMode::FinalOnly,
        )
        .unwrap();
        let (report, _) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                filter_threshold: ft,
                convergence_epsilon: 1e-7,
                max_iterations: 10,
                pdelta_threshold: 1.1, // keep MRBG on for the whole figure
                ..Default::default()
            },
            None,
        )
        .unwrap();

        println!("\n -- {label} --");
        println!("   iter  prop-kv-pairs  time-ms");
        for it in &report.iterations {
            println!(
                "   {:>4}  {:>13}  {:>8.1}",
                it.iteration,
                it.changed_keys,
                it.wall.as_secs_f64() * 1e3
            );
        }
        series.push((label, report));
    }

    // Shape checks.
    let mut ok = true;
    let mut shape = |cond: bool, msg: &str| {
        println!("   shape: {msg} : {}", if cond { "OK" } else { "MISMATCH" });
        ok &= cond;
    };

    let wo = &series[0].1;
    let ft1 = &series[3].1;
    // w/o CPC: propagation grows to a large share of all keys.
    let peak_wo = wo
        .iterations
        .iter()
        .map(|i| i.changed_keys)
        .max()
        .unwrap_or(0);
    shape(
        peak_wo as f64 > 0.5 * n as f64,
        "w/o CPC propagation reaches most kv-pairs within a few iterations",
    );
    // FT=1 peaks below w/o CPC.
    let peak_ft1 = ft1
        .iterations
        .iter()
        .map(|i| i.changed_keys)
        .max()
        .unwrap_or(0);
    shape(
        peak_ft1 < peak_wo,
        "CPC (FT=1) peak propagation below w/o CPC",
    );
    // With CPC, propagation eventually declines from its peak.
    if let Some(peak_idx) = ft1
        .iterations
        .iter()
        .enumerate()
        .max_by_key(|(_, i)| i.changed_keys)
        .map(|(i, _)| i)
    {
        let last = ft1.iterations.last().unwrap().changed_keys;
        shape(
            last < ft1.iterations[peak_idx].changed_keys || ft1.converged,
            "CPC propagation declines after its peak (or converges)",
        );
    }
    // First iteration carries the delta-MRBGraph merge.
    shape(
        !wo.iterations.is_empty(),
        "w/o CPC executed at least one iteration",
    );
    assert!(ok, "Fig. 11 shape checks failed");
}
