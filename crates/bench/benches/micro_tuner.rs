//! Microbench of the self-tuning runtime: **static one-shot compaction
//! policy vs the online controller** across a refresh schedule whose churn
//! shifts under the policy's feet.
//!
//! Both variants replay the *same* precomputed delta schedule against the
//! *same* pristine converged SSSP store image, through the same delta
//! engine — and land on **bit-identical** state (`summarize` asserts it;
//! the tuner only moves scheduling knobs). What differs is the compaction
//! story:
//!
//! * **static** — `TuningMode::Off` with the policy
//!   `CompactionPolicy::from_cost_model` precomputes before the run (the
//!   paper's §4 posture: evaluate the cost model once). The operator here
//!   calibrated for a long retention horizon, which clamps the model's
//!   garbage trigger at 5% — so during high-churn refreshes the policy
//!   reconstructs a shard every few merges, each rewrite reclaiming a
//!   sliver of the bytes it streams.
//! * **tuned** — `TuningMode::Active`: the per-shard controllers watch the
//!   live garbage fraction at each iteration fence and steer eagerness
//!   *bidirectionally around the base policy* — here they back it off
//!   toward the lazy ceilings until garbage approaches the 30% set-point,
//!   cutting reconstruction traffic several-fold at equal read volume.
//!
//! Two groups, gated by `scripts/bench_check.sh`:
//!
//! * `micro_tuner/shifting` — low→high→low churn: tuned must be ≥ 1.15×
//!   faster than static (the adversarial phase the controller exists for:
//!   the high-churn middle is where the miscalibrated trigger thrashes);
//! * `micro_tuner/steady` — constant low churn: tuned must never fall
//!   below 0.95× of static (controller overhead + misfires must stay in
//!   the noise; in practice the lazy rail wins here too).
//!
//! The workload is deliberately **fixed-size** (no `sized()` scaling): the
//! lever is the relation between the per-refresh garbage rate and the
//! static 5% trigger, which must not shift with `I2MR_BENCH_QUICK`.
//! Snapshot lands in `BENCH_tuner.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use i2mr_algos::sssp::{self, Sssp};
use i2mr_common::costmodel::ClusterCostModel;
use i2mr_common::tuner::{TuningConfig, TuningMode};
use i2mr_core::incr_iter::IncrParams;
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_core::{Delta, PartitionedData};
use i2mr_datagen::delta::{weighted_graph_delta, DeltaSpec};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::{JobConfig, WorkerPool};
use i2mr_store::compact::CompactionPolicy;
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use std::path::{Path, PathBuf};

const N_PARTS: usize = 4;
/// Vertices: sized so each shard's live image (~0.5 MiB) sits well above
/// the static policy's 64 KiB `min_file_bytes`, so the 5% garbage trigger
/// is what fires — the miscalibration under test.
const N_VERTICES: u64 = 16_000;
const N_EDGES: u64 = N_VERTICES * 6;
const SOURCE: u64 = 0;
const MAX_ITERS: u64 = 500;

/// Churn schedules (fraction of edges re-weighted per refresh). High churn
/// drives wide SSSP correction cascades — many merges, fast garbage
/// growth — which is exactly where the static trigger thrashes.
const SHIFTING: [f64; 10] = [
    0.0005, 0.0005, 0.003, 0.003, 0.003, 0.003, 0.003, 0.003, 0.0005, 0.0005,
];
const STEADY: [f64; 10] = [0.0005; 10];

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-micro-tuner-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Recursive dir copy: restores a pristine converged store per sample.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

type SsspData = PartitionedData<u64, Vec<(u64, f64)>, u64, f64>;

/// The static posture both variants start from: the §4 cost model,
/// evaluated once before the run for a 40-refresh horizon. The long
/// horizon clamps `min_garbage_ratio` at 0.05 — rational under the
/// model's seek-priced reads, over-eager on this workload.
fn static_policy() -> CompactionPolicy {
    CompactionPolicy::from_cost_model(&ClusterCostModel::default(), 40)
}

fn runtime_config() -> StoreRuntimeConfig {
    StoreRuntimeConfig {
        policy: static_policy(),
        ..Default::default()
    }
}

/// One converged SSSP computation plus the precomputed refresh schedule
/// (each delta generated against the graph as evolved by the previous
/// ones — identical for both variants).
struct Converged {
    data: SsspData,
    pristine: PathBuf,
    deltas: Vec<Delta<u64, Vec<(u64, f64)>>>,
}

fn converge(pool: &WorkerPool, cfg: &JobConfig, schedule: &[f64], tag: &str) -> Converged {
    let mut graph = GraphGen::new(N_VERTICES, N_EDGES, 0xF1611).weighted();
    let pristine = scratch(&format!("pristine-{tag}"));
    let (data, stores, _) = sssp::i2mr_initial(
        pool,
        cfg,
        &graph,
        SOURCE,
        &pristine,
        runtime_config(),
        MAX_ITERS,
    )
    .unwrap();
    drop(stores); // flushed: the pristine dir is a complete reopenable image

    // Re-weight-only churn (no inserts/deletes): the chunk population stays
    // fixed and every correction cascade turns old versions into garbage.
    let deltas = schedule
        .iter()
        .enumerate()
        .map(|(i, &churn)| {
            let delta = weighted_graph_delta(
                &graph,
                DeltaSpec {
                    change_fraction: churn,
                    delete_fraction: 0.0,
                    insert_fraction: 0.0,
                    seed: 0xFEED + i as u64,
                },
            );
            graph = delta.apply_to(&graph);
            delta
        })
        .collect();
    Converged {
        data,
        pristine,
        deltas,
    }
}

/// Untimed restore of the pristine store image: a live incremental system
/// has its store plane open already, so the copy + open are setup cost.
fn restore(pool: &WorkerPool, conv: &Converged, tag: &str) -> StoreManager {
    let dir = scratch(&format!("work-{tag}"));
    copy_dir(&conv.pristine, &dir);
    StoreManager::open(pool, &dir, N_PARTS, runtime_config()).unwrap()
}

/// Replay the whole refresh schedule through one session (the tuner's
/// controller state persists across refreshes, as it would in a live
/// serving deployment).
fn run_schedule(
    pool: &WorkerPool,
    cfg: &JobConfig,
    conv: &Converged,
    stores: &StoreManager,
    mode: TuningMode,
) -> SsspData {
    let spec = Sssp { source: SOURCE };
    let mut data = conv.data.clone();
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .incr(IncrParams {
            filter_threshold: Some(0.0),
            convergence_epsilon: 1e-12,
            max_iterations: MAX_ITERS,
            ..Default::default()
        })
        .iter(IterParams {
            epsilon: 1e-12,
            max_iterations: MAX_ITERS,
            preserve: PreserveMode::None,
        })
        .store_runtime(runtime_config())
        .tuning(TuningConfig::with_mode(mode))
        .stores_ref(stores)
        .build()
        .unwrap();
    for delta in &conv.deltas {
        session.run_delta(&mut data, delta).unwrap();
    }
    data
}

fn bench_schedules(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let cfg = JobConfig::symmetric(N_PARTS);
    for (schedule, tag) in [(&SHIFTING[..], "shifting"), (&STEADY[..], "steady")] {
        let conv = converge(&pool, &cfg, schedule, tag);
        let mut g = c.benchmark_group(format!("micro_tuner/{tag}"));
        g.bench_function(BenchmarkId::new("static", N_PARTS), |b| {
            b.iter_batched(
                || restore(&pool, &conv, &format!("{tag}-static")),
                |stores| run_schedule(&pool, &cfg, &conv, &stores, TuningMode::Off),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(BenchmarkId::new("tuned", N_PARTS), |b| {
            b.iter_batched(
                || restore(&pool, &conv, &format!("{tag}-tuned")),
                |stores| run_schedule(&pool, &cfg, &conv, &stores, TuningMode::Active),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}

/// Shape + equivalence: one schedule replay through each variant must land
/// on **bit-identical** state (controllers move scheduling, never values),
/// and the headline ratios clear the gates `scripts/bench_check.sh`
/// enforces: tuned ≥ 1.15× static on the shifting schedule, ≥ 0.95× on
/// the steady one.
fn summarize(_c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let cfg = JobConfig::symmetric(N_PARTS);
    let conv = converge(&pool, &cfg, &SHIFTING, "eq");

    let stores_off = restore(&pool, &conv, "eq-static");
    let off = run_schedule(&pool, &cfg, &conv, &stores_off, TuningMode::Off);
    let stores_on = restore(&pool, &conv, "eq-tuned");
    let on = run_schedule(&pool, &cfg, &conv, &stores_on, TuningMode::Active);
    assert_eq!(
        off.state, on.state,
        "tuning diverged from static: controllers must not change the fixed point"
    );

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    for (tag, floor) in [("shifting", 1.15), ("steady", 0.95)] {
        let s = median(&format!("micro_tuner/{tag}/static/{N_PARTS}"));
        let t = median(&format!("micro_tuner/{tag}/tuned/{N_PARTS}"));
        match (s, t) {
            (Some(s), Some(t)) if t > 0.0 => {
                let speedup = s / t;
                let ok = if speedup >= floor { "OK" } else { "MISMATCH" };
                println!(
                    "shape: {tag} schedule at {N_VERTICES} vertices: tuned {speedup:.2}x vs \
                     static (target >= {floor}x) .. {ok}"
                );
            }
            _ => println!("shape: {tag} medians missing .. SKIPPED"),
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedules, summarize
}
criterion_main!(benches);
