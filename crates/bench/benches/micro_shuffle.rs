//! Microbench of the shuffle→sort→group→reduce data plane.
//!
//! Compares the **zero-copy** pipeline (sized-codec byte metering,
//! `sort_unstable`, borrowed [`Values`] groups, pooled buffers) against a
//! faithful reproduction of the **pre-refactor baseline** (encode-to-meter,
//! stable sort, per-group value cloning) at three run sizes, so the ≥20 %
//! sort+group+reduce improvement is measurable forever, not just once.
//!
//! The workload is GIM-V-shaped (heap-backed block values): that is where
//! the old clone-per-group reduce paid one allocation **per record**, the
//! dominant avoidable cost this refactor removes.
//!
//! `scripts/bench_snapshot.sh` runs this target with `I2MR_BENCH_JSON` set
//! and snapshots both variants' timings into `BENCH_shuffle.json` — the
//! repo's perf-trajectory baseline for this hot path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use i2mr_bench::sized;
use i2mr_common::codec::Codec;
use i2mr_common::hash::MapKey;
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::shuffle::{
    groups, sort_runs, transpose_pooled, RunPool, ShuffleBuffers, ShuffleRecord,
};
use i2mr_mapred::types::Values;
use i2mr_mapred::WorkerPool;

const N_PARTS: usize = 4;

fn run_sizes() -> [usize; 3] {
    [
        sized(10_000) as usize,
        sized(50_000) as usize,
        sized(200_000) as usize,
    ]
}

/// Block edge length of the GIM-V-shaped intermediate values.
const BLOCK: usize = 8;

/// The intermediate value type: a partial matrix-vector product block, the
/// shape GIM-V shuffles (paper Algorithm 4). Heap-backed on purpose — this
/// is exactly the case where the old clone-per-group reduce path paid one
/// allocation per record and the borrowed [`Values`] view pays none.
type Val = Vec<f64>;

/// GIM-V-shaped intermediate records: u64 keys (~8 records/group),
/// `BLOCK`-wide partial product blocks, deterministic MKs.
fn gen_records(n: usize) -> Vec<ShuffleRecord<u64, Val>> {
    let n_keys = (n / 8).max(1) as u64;
    (0..n as u64)
        .map(|i| {
            let k = (i.wrapping_mul(2654435761)) % n_keys;
            let base = (i % 1000) as f64 * 1e-3;
            (
                k,
                MapKey(i as u128),
                (0..BLOCK).map(|d| base + d as f64).collect(),
            )
        })
        .collect()
}

fn fill_buffers(
    records: &[ShuffleRecord<u64, Val>],
    pool: Option<&RunPool<u64, Val>>,
) -> Vec<ShuffleBuffers<u64, Val>> {
    // Two simulated map tasks, each partitioning half the records.
    records
        .chunks(records.len().div_ceil(2).max(1))
        .map(|half| {
            let mut b = match pool {
                Some(pool) => ShuffleBuffers::with_pool(N_PARTS, pool),
                None => ShuffleBuffers::new(N_PARTS),
            };
            for (k, mk, v) in half {
                b.push(*k, *mk, v.clone(), &HashPartitioner);
            }
            b
        })
        .collect()
}

/// The GIM-V-style combineAll fold both variants run per group.
#[inline]
fn fold<'a>(blocks: impl Iterator<Item = &'a Val>) -> f64 {
    let mut acc = 0.15;
    for b in blocks {
        acc += 0.85 * b.iter().sum::<f64>();
    }
    acc
}

// ---------------------------------------------------------------------------
// Pre-refactor baseline, reproduced verbatim: encode-to-meter transpose,
// stable sort on scoped threads, per-group value cloning before reduce.
// ---------------------------------------------------------------------------

fn legacy_metered_size<K: Codec, V: Codec>(k: &K, v: &V, scratch: &mut Vec<u8>) -> u64 {
    scratch.clear();
    k.encode(scratch);
    v.encode(scratch);
    scratch.len() as u64
}

fn legacy_transpose(
    map_outputs: Vec<ShuffleBuffers<u64, Val>>,
    n_reduce: usize,
) -> (Vec<Vec<ShuffleRecord<u64, Val>>>, u64, u64) {
    let mut runs: Vec<Vec<ShuffleRecord<u64, Val>>> = (0..n_reduce).map(|_| Vec::new()).collect();
    let mut records = 0u64;
    let mut bytes = 0u64;
    let mut scratch = Vec::with_capacity(64);
    for buffers in map_outputs {
        for (p, part) in buffers.into_parts().into_iter().enumerate() {
            records += part.len() as u64;
            for (k, _mk, v) in &part {
                bytes += legacy_metered_size(k, v, &mut scratch);
            }
            runs[p].extend(part);
        }
    }
    (runs, records, bytes)
}

fn legacy_sort_run(run: &mut [ShuffleRecord<u64, Val>]) {
    run.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// The old `values_of` contract: clone every group value into a scratch
/// `Vec<V2>` before the reducer call (one heap allocation per record for
/// heap-backed V2 like these blocks).
fn legacy_values_of<'a>(group: &'a [ShuffleRecord<u64, Val>], out: &mut Vec<Val>) -> &'a u64 {
    out.clear();
    out.extend(group.iter().map(|(_, _, v)| v.clone()));
    &group[0].0
}

fn legacy_sort_group_reduce(mut runs: Vec<Vec<ShuffleRecord<u64, Val>>>) -> f64 {
    std::thread::scope(|s| {
        for run in runs.iter_mut() {
            s.spawn(|| legacy_sort_run(run));
        }
    });
    let mut sink = 0.0f64;
    let mut values: Vec<Val> = Vec::new();
    for run in &runs {
        for group in groups(run) {
            let _k = legacy_values_of(group, &mut values);
            sink += fold(values.iter());
        }
    }
    sink
}

// ---------------------------------------------------------------------------
// Zero-copy pipeline (the production path).
// ---------------------------------------------------------------------------

fn zerocopy_sort_group_reduce(
    pool: &WorkerPool,
    mut runs: Vec<Vec<ShuffleRecord<u64, Val>>>,
    recycler: &RunPool<u64, Val>,
) -> f64 {
    sort_runs(pool, &mut runs, 0).expect("sort tasks");
    let mut sink = 0.0f64;
    for run in &runs {
        for group in groups(run) {
            let vals: Values<u64, Val> = Values::group(group);
            sink += fold(vals.iter());
        }
    }
    recycler.recycle_all(runs);
    sink
}

fn bench_transpose(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_shuffle/transpose");
    for n in run_sizes() {
        let records = gen_records(n);
        g.bench_with_input(BenchmarkId::new("baseline", n), &records, |b, recs| {
            b.iter_batched(
                || fill_buffers(recs, None),
                |bufs| legacy_transpose(bufs, N_PARTS),
                BatchSize::LargeInput,
            )
        });
        let recycler: RunPool<u64, Val> = RunPool::new();
        g.bench_with_input(BenchmarkId::new("zerocopy", n), &records, |b, recs| {
            b.iter_batched(
                || fill_buffers(recs, Some(&recycler)),
                |bufs| {
                    let (runs, recs_n, bytes) = transpose_pooled(bufs, N_PARTS, false, &recycler);
                    recycler.recycle_all(runs);
                    (recs_n, bytes)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_sort_group_reduce(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let mut g = c.benchmark_group("micro_shuffle/sortreduce");
    for n in run_sizes() {
        let records = gen_records(n);
        let (runs, _, _) = legacy_transpose(fill_buffers(&records, None), N_PARTS);
        g.bench_with_input(BenchmarkId::new("baseline", n), &runs, |b, runs| {
            b.iter_batched(
                || runs.clone(),
                legacy_sort_group_reduce,
                BatchSize::LargeInput,
            )
        });
        let recycler: RunPool<u64, Val> = RunPool::new();
        g.bench_with_input(BenchmarkId::new("zerocopy", n), &runs, |b, runs| {
            b.iter_batched(
                || runs.clone(),
                |rs| zerocopy_sort_group_reduce(&pool, rs, &recycler),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// End-to-end: buffers → transpose → sort → group → reduce, both variants.
fn bench_pipeline(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let mut g = c.benchmark_group("micro_shuffle/pipeline");
    for n in run_sizes() {
        let records = gen_records(n);
        g.bench_with_input(BenchmarkId::new("baseline", n), &records, |b, recs| {
            b.iter_batched(
                || fill_buffers(recs, None),
                |bufs| {
                    let (runs, _, _) = legacy_transpose(bufs, N_PARTS);
                    legacy_sort_group_reduce(runs)
                },
                BatchSize::LargeInput,
            )
        });
        let recycler: RunPool<u64, Val> = RunPool::new();
        g.bench_with_input(BenchmarkId::new("zerocopy", n), &records, |b, recs| {
            b.iter_batched(
                || fill_buffers(recs, Some(&recycler)),
                |bufs| {
                    let (runs, _, _) = transpose_pooled(bufs, N_PARTS, false, &recycler);
                    zerocopy_sort_group_reduce(&pool, runs, &recycler)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// Sanity + shape: both pipelines agree bit-for-bit, and the zero-copy
/// sort+group+reduce stage beats the baseline by the target margin.
fn summarize(_c: &mut Criterion) {
    // Correctness cross-check (cheap, independent of timing).
    let records = gen_records(20_000);
    let (legacy_runs, legacy_recs, legacy_bytes) =
        legacy_transpose(fill_buffers(&records, None), N_PARTS);
    let recycler: RunPool<u64, Val> = RunPool::new();
    let (zc_runs, zc_recs, zc_bytes) = transpose_pooled(
        fill_buffers(&records, Some(&recycler)),
        N_PARTS,
        false,
        &recycler,
    );
    assert_eq!(legacy_recs, zc_recs);
    assert_eq!(
        legacy_bytes, zc_bytes,
        "encoded_len metering must match encode"
    );
    let wp = WorkerPool::new(N_PARTS);
    let a = legacy_sort_group_reduce(legacy_runs);
    let b = zerocopy_sort_group_reduce(&wp, zc_runs, &recycler);
    assert_eq!(a.to_bits(), b.to_bits(), "pipelines must agree bit-for-bit");

    // Shape line from the recorded medians (largest size dominates).
    let recs = criterion::completed_records();
    let n = *run_sizes().last().unwrap();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let base = median(&format!("micro_shuffle/sortreduce/baseline/{n}"));
    let zc = median(&format!("micro_shuffle/sortreduce/zerocopy/{n}"));
    match (base, zc) {
        (Some(base), Some(zc)) if base > 0.0 => {
            let gain = 100.0 * (base - zc) / base;
            let ok = if gain >= 20.0 { "OK" } else { "MISMATCH" };
            println!(
                "shape: sort+group+reduce zero-copy vs baseline at n={n}: {gain:.1}% faster \
                 (target >= 20%) .. {ok}"
            );
        }
        _ => println!("shape: sortreduce medians missing .. SKIPPED"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_transpose, bench_sort_group_reduce, bench_pipeline, summarize
}
criterion_main!(benches);
