//! Fig. 10: effect of the change-propagation filter threshold.
//!
//! PageRank with 10 % changed data, filter threshold FT ∈ {0.1, 0.5, 1}
//! (scaled to our rank magnitudes; the paper's ranks are |N|× larger
//! because it skips normalization): (a) cumulative runtime per iteration,
//! (b) mean error per iteration vs the offline-exact result.
//!
//! Expected shape: larger FT → faster (fewer propagated kv-pairs) but
//! larger mean error; all mean errors stay small (paper: < 0.2 %).

use i2mr_algos::pagerank::{self, PageRank};
use i2mr_bench::{banner, scratch, sized};
use i2mr_core::incr_iter::IncrParams;
use i2mr_core::iterative::PreserveMode;
use i2mr_datagen::delta::{graph_delta, DeltaSpec};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::{JobConfig, WorkerPool};

fn main() {
    // Paper thresholds 0.1/0.5/1 on ranks ~|N|; ours are ~1, so scale by 1e-3.
    let thresholds = [("FT=0.1", 1e-4), ("FT=0.5", 5e-4), ("FT=1", 1e-3)];
    banner(
        "Fig. 10",
        "change propagation control: runtime and mean error per filter threshold",
        &format!(
            "{}-vertex graph, 10% delta, thresholds scaled 1e-3x to our rank magnitude",
            sized(3000)
        ),
    );
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let graph = GraphGen::new(sized(3000), sized(24_000), 0xF1).generate();
    let spec = PageRank::default();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0xA0));
    let updated = delta.apply_to(&graph);

    // Offline-exact refreshed result.
    let (exact_data, _) = pagerank::itermr(&pool, &cfg, &updated, &spec, 300, 1e-12).unwrap();
    let exact: Vec<(u64, f64)> = exact_data.state_snapshot();

    let mut summary = Vec::new();
    for (label, ft) in thresholds {
        let dir = scratch(&format!("fig10-{ft}"));
        let (mut data, stores, _) = pagerank::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            &spec,
            &dir,
            Default::default(),
            300,
            1e-11,
            PreserveMode::FinalOnly,
        )
        .unwrap();
        let (report, run) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                filter_threshold: Some(ft),
                convergence_epsilon: 1e-9,
                max_iterations: 10,
                ..Default::default()
            },
            None,
        )
        .unwrap();

        // Mean relative error vs exact after the full refresh.
        let approx = data.state_snapshot();
        let mean_err = exact
            .iter()
            .zip(&approx)
            .map(|((_, e), (_, a))| ((e - a) / e).abs())
            .sum::<f64>()
            / exact.len() as f64;

        println!("\n -- {label} (scaled {ft}) --");
        println!("   iter  cumulative-ms  propagated-kv");
        let mut cum = 0.0;
        for it in &report.iterations {
            cum += it.wall.as_secs_f64() * 1e3;
            println!(
                "   {:>4}  {:>12.1}  {:>12}",
                it.iteration, cum, it.changed_keys
            );
        }
        println!(
            "   total {:.1} ms, mean error {:.4}% (paper: < 0.2%)",
            run.wall.as_secs_f64() * 1e3,
            mean_err * 100.0
        );
        let propagated: u64 = report.iterations.iter().map(|i| i.changed_keys).sum();
        summary.push((label, run.wall, mean_err, propagated));
    }

    // Shape: larger threshold → fewer propagated kv-pairs and error bounded.
    let mut ok = true;
    let p01 = summary[0].3;
    let p1 = summary[2].3;
    if p1 <= p01 {
        println!("\n   shape: FT=1 propagates <= FT=0.1 : OK ({p1} vs {p01})");
    } else {
        println!("\n   shape: FT=1 propagates <= FT=0.1 : MISMATCH ({p1} vs {p01})");
        ok = false;
    }
    for (label, _, err, _) in &summary {
        if *err < 0.005 {
            println!(
                "   shape: {label} mean error < 0.5% : OK ({:.4}%)",
                err * 100.0
            );
        } else {
            println!(
                "   shape: {label} mean error < 0.5% : MISMATCH ({:.4}%)",
                err * 100.0
            );
            ok = false;
        }
    }
    assert!(ok, "Fig. 10 shape checks failed");
}
