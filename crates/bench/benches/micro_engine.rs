//! Criterion microbenchmarks for the engine substrate: stable hashing,
//! shuffle sort, and a full small word-count job.

use criterion::{criterion_group, criterion_main, Criterion};
use i2mr_common::hash::{stable_hash64, MapKey};
use i2mr_mapred::partition::HashPartitioner;
use i2mr_mapred::shuffle::sort_run;
use i2mr_mapred::types::{Emitter, Values};
use i2mr_mapred::{JobConfig, MapReduceJob, WorkerPool};

fn bench_hash(c: &mut Criterion) {
    let key = b"a-representative-intermediate-key";
    c.bench_function("engine/xxhash64_33B", |b| b.iter(|| stable_hash64(key)));
    c.bench_function("engine/mk_for_record", |b| {
        b.iter(|| MapKey::for_record(b"vertex-1234", b"neighbor-list-payload"))
    });
}

fn bench_sort(c: &mut Criterion) {
    let run: Vec<(u64, MapKey, f64)> = (0..50_000u64)
        .map(|i| ((i * 2654435761) % 10_000, MapKey(i as u128), i as f64))
        .collect();
    c.bench_function("engine/sort_run_50k", |b| {
        b.iter_batched(
            || run.clone(),
            |mut r| {
                sort_run(&mut r);
                r
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_wordcount_job(c: &mut Criterion) {
    let input: Vec<(u64, String)> = (0..2000u64)
        .map(|i| (i, format!("w{} w{} w{} common", i % 97, i % 31, i % 7)))
        .collect();
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let mapper = |_k: &u64, text: &String, out: &mut Emitter<String, u64>| {
        for w in text.split_whitespace() {
            out.emit(w.to_string(), 1);
        }
    };
    let reducer = |k: &String, vs: Values<String, u64>, out: &mut Emitter<String, u64>| {
        out.emit(k.clone(), vs.iter().sum());
    };
    c.bench_function("engine/wordcount_job_2k_records", |b| {
        b.iter(|| {
            let job = MapReduceJob::new(&cfg, &mapper, &reducer, &HashPartitioner);
            job.run(&pool, &input, 0).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hash, bench_sort, bench_wordcount_job
}
criterion_main!(benches);
