//! Serving-plane tail latency: point lookups through a [`ServeHandle`]
//! while the store plane is idle vs. while an incremental merge+compact
//! churn runs against the same shards.
//!
//! The serving split read path exists so that online point lookups never
//! wait behind the data plane's exclusive writers: pooled readers chase
//! compaction generations, the hot-key cache rides shard data versions,
//! and merge work runs on the executor's Data lane below Serve-priority
//! work. This bench measures what that buys at the tail — the p99 of a
//! `get` under write churn must stay within **3×** of the idle p99
//! (`scripts/bench_check.sh micro_serve` gates the ratio; the committed
//! snapshot lives in `BENCH_serve.json`).
//!
//! The headline records are externally-measured quantiles, so they are
//! registered via `criterion::record_external` with the p99 in the
//! `median_ns` field the snapshot/gate scripts read:
//!
//!   micro_serve/lookup/idle/p99
//!   micro_serve/lookup/merging/p99

use criterion::{criterion_group, criterion_main, record_external, BenchRecord, Criterion};
use i2mr_bench::{scratch, sized};
use i2mr_common::hash::MapKey;
use i2mr_mapred::WorkerPool;
use i2mr_store::format::{Chunk, ChunkEntry};
use i2mr_store::merge::{DeltaChunk, DeltaEntry};
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use i2mr_store::serve::ServeConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const N_SHARDS: usize = 4;

fn key(p: usize, i: u64) -> Vec<u8> {
    format!("k{p}-{i:06}").into_bytes()
}

fn seeded_plane(pool: &WorkerPool, tag: &str, keys_per_shard: u64) -> StoreManager {
    let mgr = StoreManager::create(
        pool,
        scratch(&format!("serve-{tag}")),
        N_SHARDS,
        StoreRuntimeConfig::default(),
    )
    .unwrap();
    let batches: Vec<Vec<Chunk>> = (0..N_SHARDS)
        .map(|p| {
            (0..keys_per_shard)
                .map(|i| {
                    Chunk::new(
                        key(p, i),
                        (0..4u128)
                            .map(|m| ChunkEntry {
                                mk: MapKey(m),
                                value: vec![0xA5; 48],
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect();
    mgr.append_batch_all(0, batches).unwrap();
    mgr
}

/// Measure `lookups` point gets over a uniform key sweep; returns sorted
/// per-lookup latencies.
fn measure(mgr: &StoreManager, keys_per_shard: u64, lookups: u64) -> Vec<Duration> {
    let serve = mgr.serve(ServeConfig::default());
    let mut rng: u64 = 0x5EED_CAFE;
    let mut samples = Vec::with_capacity(lookups as usize);
    for _ in 0..lookups {
        // xorshift64: cheap, deterministic key choice.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let p = (rng % N_SHARDS as u64) as usize;
        let k = key(p, (rng >> 8) % keys_per_shard);
        let start = Instant::now();
        let got = serve.get(p, &k).unwrap();
        samples.push(start.elapsed());
        assert!(got.is_some(), "seeded key must stay live through churn");
    }
    samples.sort_unstable();
    samples
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn record(variant: &str, sorted: &[Duration]) {
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "   {variant:<8} p50 {:>9.3?}  p99 {:>9.3?}  mean {:>9.3?}  ({} lookups)",
        quantile(sorted, 0.50),
        quantile(sorted, 0.99),
        mean,
        sorted.len()
    );
    record_external(BenchRecord {
        id: format!("micro_serve/lookup/{variant}/p99"),
        min_ns: sorted[0].as_nanos(),
        median_ns: quantile(sorted, 0.99).as_nanos(),
        mean_ns: mean.as_nanos(),
        samples: sorted.len(),
    });
}

fn bench_serve_under_merge(c: &mut Criterion) {
    let _ = c; // measurement is hand-rolled: the headline is a quantile
    let keys_per_shard = sized(2000);
    let lookups = if criterion::is_test_mode() {
        64
    } else {
        sized(20_000)
    };
    let pool = WorkerPool::new(N_SHARDS);

    println!();
    println!("== micro_serve: point-lookup tail latency, idle vs. under merge churn ==");
    println!("   {N_SHARDS} shards x {keys_per_shard} keys, {lookups} lookups per variant");

    // Idle plane: no writers anywhere.
    let idle = seeded_plane(&pool, "idle", keys_per_shard);
    let idle_samples = measure(&idle, keys_per_shard, lookups);
    record("idle", &idle_samples);

    // Churning plane: a background thread runs merge rounds (delete +
    // re-insert sweeps, one shard per round) with policy-driven
    // compaction between rounds, for the whole measurement window.
    let merging = seeded_plane(&pool, "merging", keys_per_shard);
    let stop = AtomicBool::new(false);
    let rounds = AtomicU64::new(0);
    let merging_samples = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut round: u64 = 1;
            while !stop.load(Ordering::Relaxed) {
                let target = (round as usize) % N_SHARDS;
                merging
                    .merge_apply_all(round, |p| {
                        if p != target {
                            return Ok(Vec::new());
                        }
                        Ok((0..keys_per_shard)
                            .map(|i| DeltaChunk {
                                key: key(p, i),
                                entries: vec![
                                    DeltaEntry::Delete(MapKey(1)),
                                    DeltaEntry::Insert(MapKey(1), vec![round as u8; 48]),
                                ],
                            })
                            .collect())
                    })
                    .unwrap();
                merging.maybe_compact(round).unwrap();
                round += 1;
            }
            merging.fence_compactions().unwrap();
            rounds.store(round - 1, Ordering::Relaxed);
        });
        let samples = measure(&merging, keys_per_shard, lookups);
        stop.store(true, Ordering::Relaxed);
        samples
    });
    println!(
        "   churn: {} merge rounds completed during the merging window",
        rounds.load(Ordering::Relaxed)
    );
    record("merging", &merging_samples);

    let idle_p99 = quantile(&idle_samples, 0.99).as_nanos() as f64;
    let merge_p99 = quantile(&merging_samples, 0.99).as_nanos() as f64;
    println!(
        "   p99 under merge = {:.2}x idle p99 (gate: <= 3x)",
        merge_p99 / idle_p99
    );
}

criterion_group!(benches, bench_serve_under_merge);
criterion_main!(benches);
