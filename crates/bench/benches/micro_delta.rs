//! Microbench of the delta-iteration engine: **full-pass incremental
//! refresh vs workset-driven delta iteration** on SSSP, across 0.1%, 1%
//! and 10% structural churn (the fig. 11 propagation-control shape).
//!
//! Both variants refresh the *same* converged shortest-path computation
//! from the *same* seeded improvement-only weight delta, and — because
//! min-plus propagation under the monotonic contract is exact (FT = 0) —
//! both land on the **bit-identical** fixed point (`summarize` asserts
//! it). What differs is how much work reaching it takes:
//!
//! * **full** — full-pass incremental refresh: apply the structure delta,
//!   then re-run the plain iterative engine **warm-started from the
//!   converged state**. Every pass shuffles every edge and reduces every
//!   vertex until nothing moves, then re-preserves the MRBGraph so the
//!   computation stays refreshable — the refresh story before workset
//!   scheduling existed.
//! * **delta** — `DeltaIterEngine`: the changed records seed a workset,
//!   each iteration maps/shuffles/reduces **only workset keys**, point
//!   merges hit only touched shards of the preserved MRBG-Store, and
//!   reduce-output deltas seed the next workset until it drains.
//!
//! The delta store plane is tuned for the sparse-workset access pattern:
//! point reads (`QueryStrategy::IndexOnly` — windowed scans would drag in
//! most of the file for a scattered workset) and reclamation deferred to
//! between refreshes (`CompactionPolicy::never()` for the run — the full
//! variant's rebuilt store carries no garbage to reclaim either, so
//! neither side pays compaction inside the timed window).
//!
//! Speedup decays as churn grows — at 10% the workset covers most of the
//! graph and the two variants converge on the same cost, which is exactly
//! the fig. 11 story. The headline `micro_delta/churn1pct` ratio is gated
//! ≥ 3× by `scripts/bench_check.sh` (full-size mode; quick mode leaves
//! less full-pass work to skip). The snapshot lands in `BENCH_delta.json`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use i2mr_bench::sized;
use i2mr_core::incr_iter::apply_structure_delta;
use i2mr_core::iterative::{IterParams, PreserveMode};
use i2mr_core::run::RunBuilder;
use i2mr_core::{Delta, PartitionedData};
use i2mr_datagen::delta::{weighted_graph_delta, DeltaSpec};
use i2mr_datagen::graph::GraphGen;
use i2mr_mapred::{JobConfig, WorkerPool};
use i2mr_store::compact::CompactionPolicy;
use i2mr_store::query::QueryStrategy;
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use std::path::{Path, PathBuf};

use i2mr_algos::sssp::{self, Sssp};

const N_PARTS: usize = 4;
const SOURCE: u64 = 0;
const MAX_ITERS: u64 = 500;

/// Churn levels and their group tags (fig. 11 x-axis).
const CHURNS: [(f64, &str); 3] = [(0.001, "0.1pct"), (0.01, "1pct"), (0.1, "10pct")];

fn n_vertices() -> u64 {
    sized(16_000)
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-micro-delta-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Recursive dir copy: restores a pristine converged store per sample.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

type SsspData = PartitionedData<u64, Vec<(u64, f64)>, u64, f64>;

/// One converged SSSP computation: the pristine state + store dir both
/// refresh variants restore from, and the seeded delta they replay.
struct Converged {
    data: SsspData,
    pristine: PathBuf,
    delta: Delta<u64, Vec<(u64, f64)>>,
}

fn converge(pool: &WorkerPool, cfg: &JobConfig, churn: f64, tag: &str) -> Converged {
    let v = n_vertices();
    let graph = GraphGen::new(v, v * 6, 0xF1611).weighted();
    let pristine = scratch(&format!("pristine-{tag}"));
    let (data, stores, _) = sssp::i2mr_initial(
        pool,
        cfg,
        &graph,
        SOURCE,
        &pristine,
        StoreRuntimeConfig::default(),
        MAX_ITERS,
    )
    .unwrap();
    // Flush everything so the pristine dir is a complete, reopenable image.
    drop(stores);
    // Improvement-only weight churn: the monotonic contract's native delta
    // shape (weights only decrease, so distances only improve).
    let delta = weighted_graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: churn,
            delete_fraction: 0.0,
            insert_fraction: 0.01,
            seed: 0xFEED,
        },
    );
    Converged {
        data,
        pristine,
        delta,
    }
}

/// Full-pass incremental refresh: apply the delta, warm-restart the plain
/// engine from the converged state, preserve the final MRBGraph into a
/// fresh store (a full pass rebuilds the preserved graph; it cannot patch
/// the old image).
fn run_full(pool: &WorkerPool, cfg: &JobConfig, conv: &Converged, tag: &str) -> SsspData {
    let mut data = conv.data.clone();
    let spec = Sssp { source: SOURCE };
    apply_structure_delta(&spec, N_PARTS, &mut data, &conv.delta);
    let stores = StoreManager::create(
        pool,
        scratch(&format!("full-{tag}")),
        N_PARTS,
        StoreRuntimeConfig::default(),
    )
    .unwrap();
    let session = RunBuilder::new(&spec)
        .pool(pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: MAX_ITERS,
            epsilon: 1e-12,
            preserve: PreserveMode::FinalOnly,
        })
        .stores_ref(&stores)
        .build()
        .unwrap();
    let report = session.run_initial(&mut data).unwrap();
    assert!(report.converged, "full-pass refresh did not converge");
    data
}

/// Workset-driven refresh against a restored pristine store image.
fn run_delta(
    pool: &WorkerPool,
    cfg: &JobConfig,
    conv: &Converged,
    stores: &StoreManager,
) -> SsspData {
    let mut data = conv.data.clone();
    let (rep, _) =
        sssp::i2mr_delta(pool, cfg, &mut data, stores, SOURCE, &conv.delta, MAX_ITERS).unwrap();
    assert!(rep.converged, "delta refresh did not converge");
    data
}

/// Untimed restore of the pristine store image for the delta variant: a
/// live incremental system has its store plane open already, so the copy +
/// open + index preload are setup, not refresh latency.
fn restore(pool: &WorkerPool, conv: &Converged, tag: &str) -> StoreManager {
    let dir = scratch(&format!("work-{tag}"));
    copy_dir(&conv.pristine, &dir);
    let stores = StoreManager::open(
        pool,
        &dir,
        N_PARTS,
        StoreRuntimeConfig {
            policy: CompactionPolicy::never(),
            ..Default::default()
        },
    )
    .unwrap();
    stores.set_strategy(QueryStrategy::IndexOnly);
    stores
}

fn bench_refresh(c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let cfg = JobConfig::symmetric(N_PARTS);
    for (churn, tag) in CHURNS {
        let conv = converge(&pool, &cfg, churn, tag);
        let mut g = c.benchmark_group(format!("micro_delta/churn{tag}"));
        g.bench_function(BenchmarkId::new("full", N_PARTS), |b| {
            b.iter_batched(
                || (),
                |()| run_full(&pool, &cfg, &conv, tag),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(BenchmarkId::new("delta", N_PARTS), |b| {
            b.iter_batched(
                || restore(&pool, &conv, tag),
                |stores| run_delta(&pool, &cfg, &conv, &stores),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }
}

/// Shape + equivalence: one refresh through each variant from the same
/// pristine image must land on the **bit-identical** fixed point (min-plus
/// under the monotonic contract is exact — no CPC approximation), and the
/// 1%-churn speedup clears the ≥ 3× target `scripts/bench_check.sh` gates
/// on.
fn summarize(_c: &mut Criterion) {
    let pool = WorkerPool::new(N_PARTS);
    let cfg = JobConfig::symmetric(N_PARTS);
    let conv = converge(&pool, &cfg, 0.01, "eq");

    let full = run_full(&pool, &cfg, &conv, "eq-full");
    let stores = restore(&pool, &conv, "eq-delta");
    let delta = run_delta(&pool, &cfg, &conv, &stores);
    assert_eq!(
        full.state, delta.state,
        "refresh variants diverged: scheduling must not change the fixed point"
    );

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let f = median(&format!("micro_delta/churn1pct/full/{N_PARTS}"));
    let d = median(&format!("micro_delta/churn1pct/delta/{N_PARTS}"));
    match (f, d) {
        (Some(f), Some(d)) if d > 0.0 => {
            let speedup = f / d;
            let ok = if speedup >= 3.0 { "OK" } else { "MISMATCH" };
            println!(
                "shape: SSSP refresh at {} vertices, 1% churn: workset-driven delta iteration \
                 {speedup:.2}x faster than full-pass incremental (target >= 3x) .. {ok}",
                n_vertices()
            );
        }
        _ => println!("shape: churn1pct medians missing .. SKIPPED"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refresh, summarize
}
criterion_main!(benches);
