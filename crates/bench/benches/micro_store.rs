//! Microbench of the MRBG-Store plane: chunk codec, point lookups, merge
//! strategies — and the headline **serial vs. sharded merge+compact**
//! comparison on a PageRank-shaped MRBGraph at 8 partitions.
//!
//! The plane comparison pits two configurations of the same
//! [`StoreManager`] against each other over identical seeded shards and
//! identical delta rounds:
//!
//! * **serial** — the pre-runtime behavior: every partition's merge runs
//!   inline on the caller thread (`parallel: false`), and reclamation is a
//!   stop-the-world `compact_all` after every refresh round (the only
//!   cadence available before the policy existed).
//! * **sharded** — the store runtime: merges scheduled as partition-affine
//!   `StoreMerge` tasks on a worker pool, and compaction driven by the
//!   default [`CompactionPolicy`] between rounds, so only shards whose
//!   garbage crossed the thresholds pay the rewrite.
//!
//! `summarize` asserts the two planes are **byte-identical** after a final
//! full compaction (the same invariant `tests/store_equivalence.rs` proves
//! on a real incremental PageRank run) and prints the speedup against the
//! ≥1.5× target. `scripts/bench_snapshot.sh micro_store` snapshots all
//! timings into `BENCH_store.json`; `scripts/bench_check.sh` gates CI on
//! the recorded serial→sharded speedup ratios.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use i2mr_bench::sized;
use i2mr_common::hash::MapKey;
use i2mr_mapred::WorkerPool;
use i2mr_store::compact::CompactionPolicy;
use i2mr_store::format::{Chunk, ChunkEntry};
use i2mr_store::merge::{DeltaChunk, DeltaEntry};
use i2mr_store::query::QueryStrategy;
use i2mr_store::runtime::{StoreManager, StoreRuntimeConfig};
use i2mr_store::store::{MrbgStore, StoreConfig};

const N_SHARDS: usize = 8;
const ROUNDS: u64 = 6;

fn chunk(k: u64, entries: usize) -> Chunk {
    Chunk::new(
        format!("key-{k:08}").into_bytes(),
        (0..entries as u128)
            .map(|m| ChunkEntry {
                mk: MapKey(m),
                value: vec![7u8; 48],
            })
            .collect(),
    )
}

fn bench_chunk_codec(c: &mut Criterion) {
    let ch = chunk(1, 16);
    let mut buf = Vec::new();
    ch.encode(&mut buf);
    c.bench_function("store/chunk_encode_16x48B", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            ch.encode(&mut out);
            out
        })
    });
    c.bench_function("store/chunk_decode_16x48B", |b| {
        b.iter(|| {
            let mut cur = buf.as_slice();
            Chunk::decode(&mut cur).unwrap()
        })
    });
}

fn build_store(tag: &str, n: u64) -> MrbgStore {
    let dir = std::env::temp_dir().join(format!("i2mr-micro-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = MrbgStore::create(dir, StoreConfig::default()).unwrap();
    s.append_batch((0..n).map(|k| chunk(k, 8)).collect())
        .unwrap();
    s
}

fn bench_point_get(c: &mut Criterion) {
    let mut s = build_store("get", 2000);
    let mut k = 0u64;
    c.bench_function("store/point_get", |b| {
        b.iter(|| {
            k = (k + 7) % 2000;
            s.get(format!("key-{k:08}").as_bytes()).unwrap()
        })
    });
    // The split read path: same lookups through a detached reader + `&self`.
    let mut reader = s.reader().unwrap();
    c.bench_function("store/point_get_reader", |b| {
        b.iter(|| {
            k = (k + 7) % 2000;
            s.get_with(&mut reader, format!("key-{k:08}").as_bytes())
                .unwrap()
        })
    });
}

fn bench_merge_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/merge_500_of_2000");
    for (name, strategy) in [
        ("index_only", QueryStrategy::IndexOnly),
        (
            "multi_dynamic",
            QueryStrategy::MultiDynamicWindow {
                gap_threshold: 4096,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, strat| {
            b.iter_batched(
                || {
                    let mut s = build_store(&format!("merge-{name}"), 2000);
                    s.set_strategy(*strat);
                    let deltas: Vec<DeltaChunk> = (0..2000u64)
                        .step_by(4)
                        .map(|k| DeltaChunk {
                            key: format!("key-{k:08}").into_bytes(),
                            entries: vec![DeltaEntry::Insert(MapKey(999), vec![1u8; 48])],
                        })
                        .collect();
                    (s, deltas)
                },
                |(mut s, deltas)| s.merge_apply(deltas).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Serial vs. sharded store plane on a PageRank-shaped MRBGraph.
// ---------------------------------------------------------------------------

/// Number of preserved Reduce instances (vertices) per shard.
fn chunks_per_shard() -> u64 {
    sized(1200)
}

/// The sharded plane's policy, with the absolute-size floor removed: the
/// default `min_file_bytes` exists to spare real deployments pointless
/// tiny-store swaps, but here it would make quick mode (8× smaller shards)
/// measure a different compaction cadence than full mode — and the
/// regression gate compares the two runs' speedup *ratios*, which must
/// therefore be size-invariant. Ratio/batch thresholds stay at defaults.
fn sharded_runtime() -> StoreRuntimeConfig {
    StoreRuntimeConfig {
        policy: CompactionPolicy {
            min_file_bytes: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// PageRank-shaped chunk: vertex key, ~8 in-edges, 8-byte rank shares.
fn pr_chunk(p: usize, v: u64) -> Chunk {
    Chunk::new(
        format!("v{p}:{v:08}").into_bytes(),
        (0..8u128)
            .map(|src| ChunkEntry {
                mk: MapKey(src * 1000 + v as u128),
                value: (0.85f64 / 8.0).to_le_bytes().to_vec(),
            })
            .collect(),
    )
}

/// Fresh manager with every shard seeded with the initial MRBGraph batch.
/// Seeding is identical for both planes (inline appends), so the measured
/// routine contains only merge + reclamation work.
fn seeded_manager(pool: &WorkerPool, tag: &str, cfg: StoreRuntimeConfig) -> StoreManager {
    let dir = std::env::temp_dir().join(format!(
        "i2mr-micro-plane-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mgr = StoreManager::create(pool, &dir, N_SHARDS, cfg).unwrap();
    let n = chunks_per_shard();
    for p in 0..N_SHARDS {
        let batch: Vec<Chunk> = (0..n).map(|v| pr_chunk(p, v)).collect();
        mgr.with_store(p, |s| s.append_batch(batch)).unwrap();
    }
    mgr
}

/// Round `r`'s delta for shard `p`: upsert one in-edge on every 4th vertex
/// (the rank of a changed source propagating to its targets — exactly the
/// shape an incremental PageRank iteration merges).
fn round_deltas(p: usize, r: u64) -> Vec<DeltaChunk> {
    (0..chunks_per_shard())
        .step_by(4)
        .map(|v| DeltaChunk {
            key: format!("v{p}:{v:08}").into_bytes(),
            entries: vec![DeltaEntry::Insert(
                MapKey((r as u128) * 1_000_000 + v as u128),
                (0.85f64 / (8 + r) as f64).to_le_bytes().to_vec(),
            )],
        })
        .collect()
}

/// Drive `ROUNDS` refresh rounds of merge + reclamation on one plane.
fn run_plane(mgr: &StoreManager, stop_the_world: bool) {
    for r in 1..=ROUNDS {
        mgr.merge_apply_all(r, |p| Ok(round_deltas(p, r))).unwrap();
        if stop_the_world {
            mgr.compact_all(r).unwrap();
        } else {
            mgr.maybe_compact(r).unwrap();
        }
    }
}

/// Merges only — isolates the scheduling difference without reclamation.
fn run_merges(mgr: &StoreManager) {
    for r in 1..=ROUNDS {
        mgr.merge_apply_all(r, |p| Ok(round_deltas(p, r))).unwrap();
    }
}

fn bench_merge_plane(c: &mut Criterion) {
    let pool = WorkerPool::new(N_SHARDS);
    let mut g = c.benchmark_group("micro_store/merge");
    g.bench_function(BenchmarkId::new("serial", N_SHARDS), |b| {
        b.iter_batched(
            || seeded_manager(&pool, "m-ser", StoreRuntimeConfig::serial()),
            |mgr| run_merges(&mgr),
            BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("sharded", N_SHARDS), |b| {
        b.iter_batched(
            || seeded_manager(&pool, "m-shd", sharded_runtime()),
            |mgr| run_merges(&mgr),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_mergephase(c: &mut Criterion) {
    let pool = WorkerPool::new(N_SHARDS);
    let mut g = c.benchmark_group("micro_store/mergephase");
    g.bench_function(BenchmarkId::new("serial", N_SHARDS), |b| {
        b.iter_batched(
            || seeded_manager(&pool, "p-ser", StoreRuntimeConfig::serial()),
            |mgr| run_plane(&mgr, true),
            BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("sharded", N_SHARDS), |b| {
        b.iter_batched(
            || seeded_manager(&pool, "p-shd", sharded_runtime()),
            |mgr| run_plane(&mgr, false),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Sanity + shape: both planes end byte-identical, and the sharded
/// merge+compact phase beats stop-the-world serial by the target margin.
fn summarize(_c: &mut Criterion) {
    // Correctness cross-check, independent of timing: identical seed +
    // identical rounds through each plane, then a final full compaction on
    // both — every shard's canonical export must match byte-for-byte.
    let pool = WorkerPool::new(N_SHARDS);
    let ser = seeded_manager(&pool, "eq-ser", StoreRuntimeConfig::serial());
    let shd = seeded_manager(&pool, "eq-shd", sharded_runtime());
    run_plane(&ser, true);
    run_plane(&shd, false);
    shd.compact_all(ROUNDS + 1).unwrap();
    ser.compact_all(ROUNDS + 1).unwrap();
    for p in 0..N_SHARDS {
        assert_eq!(
            ser.export(p).unwrap(),
            shd.export(p).unwrap(),
            "shard {p}: serial and sharded planes diverged"
        );
    }

    let recs = criterion::completed_records();
    let median = |id: &str| recs.iter().find(|r| r.id == id).map(|r| r.median_ns as f64);
    let base = median(&format!("micro_store/mergephase/serial/{N_SHARDS}"));
    let shard = median(&format!("micro_store/mergephase/sharded/{N_SHARDS}"));
    match (base, shard) {
        (Some(base), Some(shard)) if shard > 0.0 => {
            let speedup = base / shard;
            let ok = if speedup >= 1.5 { "OK" } else { "MISMATCH" };
            println!(
                "shape: merge+compact phase at {N_SHARDS} partitions: sharded plane {speedup:.2}x \
                 faster than stop-the-world serial (target >= 1.5x) .. {ok}"
            );
        }
        _ => println!("shape: mergephase medians missing .. SKIPPED"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chunk_codec, bench_point_get, bench_merge_strategies,
              bench_merge_plane, bench_mergephase, summarize
}
criterion_main!(benches);
