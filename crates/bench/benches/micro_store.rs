//! Criterion microbenchmarks for the MRBG-Store: chunk codec, point
//! lookups, and merge passes under each query strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use i2mr_common::hash::MapKey;
use i2mr_store::format::{Chunk, ChunkEntry};
use i2mr_store::merge::{DeltaChunk, DeltaEntry};
use i2mr_store::query::QueryStrategy;
use i2mr_store::store::{MrbgStore, StoreConfig};

fn chunk(k: u64, entries: usize) -> Chunk {
    Chunk::new(
        format!("key-{k:08}").into_bytes(),
        (0..entries as u128)
            .map(|m| ChunkEntry {
                mk: MapKey(m),
                value: vec![7u8; 48],
            })
            .collect(),
    )
}

fn bench_chunk_codec(c: &mut Criterion) {
    let ch = chunk(1, 16);
    let mut buf = Vec::new();
    ch.encode(&mut buf);
    c.bench_function("store/chunk_encode_16x48B", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            ch.encode(&mut out);
            out
        })
    });
    c.bench_function("store/chunk_decode_16x48B", |b| {
        b.iter(|| {
            let mut cur = buf.as_slice();
            Chunk::decode(&mut cur).unwrap()
        })
    });
}

fn build_store(tag: &str, n: u64) -> MrbgStore {
    let dir = std::env::temp_dir().join(format!("i2mr-micro-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut s = MrbgStore::create(dir, StoreConfig::default()).unwrap();
    s.append_batch((0..n).map(|k| chunk(k, 8)).collect())
        .unwrap();
    s
}

fn bench_point_get(c: &mut Criterion) {
    let mut s = build_store("get", 2000);
    let mut k = 0u64;
    c.bench_function("store/point_get", |b| {
        b.iter(|| {
            k = (k + 7) % 2000;
            s.get(format!("key-{k:08}").as_bytes()).unwrap()
        })
    });
}

fn bench_merge_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/merge_500_of_2000");
    for (name, strategy) in [
        ("index_only", QueryStrategy::IndexOnly),
        (
            "multi_dynamic",
            QueryStrategy::MultiDynamicWindow {
                gap_threshold: 4096,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, strat| {
            b.iter_batched(
                || {
                    let mut s = build_store(&format!("merge-{name}"), 2000);
                    s.set_strategy(*strat);
                    let deltas: Vec<DeltaChunk> = (0..2000u64)
                        .step_by(4)
                        .map(|k| DeltaChunk {
                            key: format!("key-{k:08}").into_bytes(),
                            entries: vec![DeltaEntry::Insert(MapKey(999), vec![1u8; 48])],
                        })
                        .collect();
                    (s, deltas)
                },
                |(mut s, deltas)| s.merge_apply(deltas).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chunk_codec, bench_point_get, bench_merge_strategies
}
criterion_main!(benches);
