//! Fig. 8: normalized runtime of the four iterative algorithms with 10 %
//! of the input changed, across five solutions.
//!
//! Paper's qualitative findings this bench reproduces:
//! * PageRank: i2MR (w/ CPC) ≈ 8× over plainMR; **HaLoop is slower than
//!   plainMR** (its extra join job per iteration outweighs caching at this
//!   structure size).
//! * SSSP: gains similar to PageRank (FT = 0, exact results).
//! * Kmeans: i2MR falls back to iterMR (P∆ = 100 %, MRBGraph off);
//!   HaLoop ≈ iterMR, both beat plainMR.
//! * GIM-V: plainMR and HaLoop need 2 jobs/iteration; iterMR/i2MR need 1;
//!   i2MR ≈ 10× over plainMR and beats HaLoop by a smaller factor.
//!
//! All recompute engines run a fixed 10 iterations on the updated data
//! (the paper's typical iteration count); incremental engines run to
//! convergence from the previous job's converged state.

use i2mr_algos::{gimv, kmeans, pagerank, sssp};
use i2mr_bench::{banner, check_shape, default_model, print_engine_table, scratch, sized};
use i2mr_core::incr_iter::IncrParams;
use i2mr_core::iterative::PreserveMode;
use i2mr_datagen::delta::{
    graph_delta, matrix_delta, points_delta, weighted_graph_delta, DeltaSpec,
};
use i2mr_datagen::graph::GraphGen;
use i2mr_datagen::matrix::MatrixGen;
use i2mr_datagen::points::PointsGen;
use i2mr_mapred::{JobConfig, WorkerPool};

const ITERS: u64 = 10;

fn main() {
    banner(
        "Fig. 8",
        "normalized runtime, four iterative algorithms x five solutions, 10% delta",
        "scaled ClueWeb/BigCross/WikiTalk stand-ins (DESIGN.md section 1)",
    );
    let cfg = JobConfig::symmetric(4);
    let pool = WorkerPool::new(4);
    let model = default_model();
    let mut all_ok = true;

    // ------------------------------------------------------------------
    // PageRank (one-to-one)
    // ------------------------------------------------------------------
    {
        let graph = GraphGen::new(sized(3000), sized(24_000), 0xF8).generate();
        let spec = pagerank::PageRank::default();
        let dir = scratch("fig8-pr");
        let (mut data, stores, _) = pagerank::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            &spec,
            &dir,
            Default::default(),
            60,
            1e-9,
            PreserveMode::FinalOnly,
        )
        .expect("initial");
        let mut data_cpc = data.clone();
        let delta = graph_delta(&graph, DeltaSpec::ten_percent(0x10));
        let updated = delta.apply_to(&graph);

        let (_, plain) = pagerank::plainmr(&pool, &cfg, &updated, 0.85, ITERS, 0.0).unwrap();
        let (_, haloop) = pagerank::haloop(&pool, &cfg, &updated, 0.85, ITERS, 0.0).unwrap();
        let (_, iter) = pagerank::itermr(&pool, &cfg, &updated, &spec, ITERS, 0.0).unwrap();
        let (_, nocpc) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                filter_threshold: None,
                convergence_epsilon: 1e-4,
                max_iterations: ITERS,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // Re-prepare preserved state for the CPC run (same initial stores).
        let dir2 = scratch("fig8-pr-cpc");
        let (_, stores2, _) = pagerank::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            &spec,
            &dir2,
            Default::default(),
            60,
            1e-9,
            PreserveMode::FinalOnly,
        )
        .unwrap();
        let (_, cpc) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data_cpc,
            &stores2,
            &spec,
            &delta,
            IncrParams {
                filter_threshold: Some(1e-3), // paper FT=1, scaled to our ranks
                convergence_epsilon: 1e-4,
                max_iterations: ITERS,
                ..Default::default()
            },
            None,
        )
        .unwrap();

        println!("\n -- PageRank --");
        let rows = vec![plain, haloop, iter, nocpc, cpc];
        print_engine_table(&rows, &model);
        all_ok &= check_shape(
            "PageRank",
            &rows,
            &[
                "HaLoop recomp",
                "PlainMR recomp",
                "IterMR recomp",
                "i2MR w/ CPC",
            ],
        );
        // w/o CPC: changes saturate the key set, so it only has to beat
        // re-computation (the paper's own sec 8.5 observation).
        all_ok &= check_shape(
            "PageRank (w/o CPC vs recompute)",
            &rows,
            &["PlainMR recomp", "i2MR w/o CPC"],
        );
    }

    // ------------------------------------------------------------------
    // SSSP (one-to-one, FT = 0 exact)
    // ------------------------------------------------------------------
    {
        let graph = GraphGen::new(sized(3000), sized(24_000), 0xE5).weighted();
        let dir = scratch("fig8-sssp");
        let (mut data, stores, _) =
            sssp::i2mr_initial(&pool, &cfg, &graph, 0, &dir, Default::default(), 80)
                .expect("initial");
        let delta = weighted_graph_delta(&graph, DeltaSpec::ten_percent(0x55));
        let updated = delta.apply_to(&graph);

        let (_, plain) = sssp::plainmr(&pool, &cfg, &updated, 0, 20).unwrap();
        let (_, hal) = sssp::haloop(&pool, &cfg, &updated, 0, 20).unwrap();
        let (_, iter) = sssp::itermr(&pool, &cfg, &updated, 0, 20).unwrap();
        let (_, incr) =
            sssp::i2mr_incremental(&pool, &cfg, &mut data, &stores, 0, &delta, 80).unwrap();

        println!("\n -- SSSP --");
        let rows = vec![plain, hal, iter, incr];
        print_engine_table(&rows, &model);
        all_ok &= check_shape(
            "SSSP",
            &rows,
            &["PlainMR recomp", "IterMR recomp", "i2MR (FT=0)"],
        );
        // HaLoop only has to lose to iterMR (its position vs plainMR depends
        // on the startup-vs-input-read balance, as in PageRank).
        all_ok &= check_shape("SSSP (HaLoop)", &rows, &["HaLoop recomp", "IterMR recomp"]);
    }

    // ------------------------------------------------------------------
    // Kmeans (all-to-one, MRBGraph off)
    // ------------------------------------------------------------------
    {
        let gen = PointsGen::new(sized(4000), 8, 8, 0x4B);
        let points = gen.all();
        let init = gen.initial_centroids(8);
        let (converged, _) = kmeans::itermr(&pool, &cfg, &points, init.clone(), 60, 1e-8).unwrap();
        let delta = points_delta(&points, DeltaSpec::ten_percent(0x33));
        let updated = delta.apply_to(&points);

        let (_, plain) = kmeans::plainmr(&pool, &cfg, &updated, init.clone(), 30, 1e-8).unwrap();
        let (_, haloop) = kmeans::haloop(&pool, &cfg, &updated, init.clone(), 30, 1e-8).unwrap();
        let (_, iter) = kmeans::itermr(&pool, &cfg, &updated, init, 30, 1e-8)
            .map(|(d, r)| (d.state, r))
            .unwrap();
        let (_, incr) =
            kmeans::i2mr_incremental(&pool, &cfg, &points, converged.state, &delta, 30, 1e-8)
                .unwrap();

        println!("\n -- Kmeans -- (i2MR turns MRBGraph off: P-delta = 100%)");
        let rows = vec![plain, haloop, iter, incr];
        print_engine_table(&rows, &model);
        all_ok &= check_shape(
            "Kmeans",
            &rows,
            &["PlainMR recomp", "HaLoop recomp", "i2MR (MRBG off)"],
        );
    }

    // ------------------------------------------------------------------
    // GIM-V (many-to-one)
    // ------------------------------------------------------------------
    {
        let mgen = MatrixGen::new(sized(256), 16, sized(12_000), 0x61);
        let blocks = mgen.blocks();
        let spec = gimv::Gimv {
            block_size: 16,
            damping: 0.85,
        };
        let dir = scratch("fig8-gimv");
        let (mut data, stores, _) = gimv::i2mr_initial(
            &pool,
            &cfg,
            &blocks,
            &spec,
            &dir,
            Default::default(),
            60,
            1e-10,
        )
        .unwrap();
        let delta = matrix_delta(&blocks, DeltaSpec::ten_percent(0x77));
        let updated = delta.apply_to(&blocks);

        let (_, plain) = gimv::plainmr(&pool, &cfg, &updated, &spec, ITERS, 0.0).unwrap();
        let (_, haloop) = gimv::haloop(&pool, &cfg, &updated, &spec, ITERS, 0.0).unwrap();
        let (_, iter) = gimv::itermr(&pool, &cfg, &updated, &spec, ITERS, 0.0).unwrap();
        let (_, incr) = gimv::i2mr_incremental_cpc(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            ITERS,
            1e-4,
            Some(1e-3),
        )
        .unwrap();

        println!("\n -- GIM-V -- (plainMR & HaLoop: 2 jobs/iteration)");
        let rows = vec![plain, haloop, iter, incr];
        print_engine_table(&rows, &model);
        all_ok &= check_shape(
            "GIM-V",
            &rows,
            &["PlainMR recomp", "HaLoop recomp", "IterMR recomp", "i2MR"],
        );
    }

    println!();
    assert!(all_ok, "Fig. 8 shape checks failed");
    println!("Fig. 8 reproduction complete: all shape checks OK");
}
