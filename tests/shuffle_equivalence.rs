//! Shuffle-equivalence: the zero-copy data plane must be a pure
//! performance change.
//!
//! Runs one seeded PageRank iteration through the production pipeline
//! (unstable pool-scheduled sorts, borrowed [`Values`] groups) and through
//! a faithful reproduction of the pre-refactor pipeline (stable sort,
//! `values_of`-style cloned `Vec<V2>` per group), and asserts the two
//! outputs are **byte-identical** under the canonical codec — not merely
//! numerically close.

use i2mapreduce::common::codec::{encode_to, Codec};
use i2mapreduce::common::hash::MapKey;
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::mapred::shuffle::{groups, ShuffleBuffers, ShuffleRecord};
use i2mapreduce::mapred::types::Values;
use i2mapreduce::mapred::{
    Emitter, HashPartitioner, JobConfig, MapReduceJob, Partitioner, WorkerPool,
};

/// `<i, Ni|Ri>` record of the paper's Algorithm 2 plainMR formulation.
type Rec = (Vec<u64>, f64);

fn pagerank_mapper(i: &u64, rec: &Rec, out: &mut Emitter<u64, Rec>) {
    let (links, rank) = rec;
    out.emit(*i, (links.clone(), f64::NAN)); // structure marker
    if !links.is_empty() {
        let share = rank / links.len() as f64;
        for j in links {
            out.emit(*j, (Vec::new(), share));
        }
    }
}

/// The reduce body, shared verbatim by both pipelines so the only
/// difference under test is how `values` reaches it.
fn pagerank_fold<'a>(j: u64, values: impl Iterator<Item = &'a Rec>) -> (u64, Rec) {
    let mut links: Vec<u64> = Vec::new();
    let mut sum = 0.0;
    for (l, share) in values {
        if share.is_nan() {
            links = l.clone();
        } else {
            sum += share;
        }
    }
    (j, (links, 0.15 + 0.85 * sum))
}

/// Pre-refactor reference: encode-metered transpose, stable per-run sort,
/// per-group clone into a scratch `Vec<V2>`, reduce over the slice.
fn legacy_iteration(input: &[(u64, Rec)], n_map: usize, n_reduce: usize) -> Vec<Vec<(u64, Rec)>> {
    // Map phase with the engine's exact MK derivation and split layout.
    let split_len = input.len().div_ceil(n_map).max(1);
    let mut map_outputs: Vec<ShuffleBuffers<u64, Rec>> = Vec::new();
    for split in input.chunks(split_len) {
        let mut buffers = ShuffleBuffers::new(n_reduce);
        let mut emitter = Emitter::new();
        let (mut kbuf, mut vbuf) = (Vec::new(), Vec::new());
        for (k1, v1) in split {
            kbuf.clear();
            k1.encode(&mut kbuf);
            vbuf.clear();
            v1.encode(&mut vbuf);
            let mk = MapKey::for_record(&kbuf, &vbuf);
            pagerank_mapper(k1, v1, &mut emitter);
            for (k2, v2) in emitter.drain() {
                buffers.push(k2, mk, v2, &HashPartitioner);
            }
        }
        map_outputs.push(buffers);
    }

    // Transpose exactly as the old code did (fresh runs, extend per part).
    let mut runs: Vec<Vec<ShuffleRecord<u64, Rec>>> = (0..n_reduce).map(|_| Vec::new()).collect();
    for buffers in map_outputs {
        for (p, part) in buffers.into_parts().into_iter().enumerate() {
            runs[p].extend(part);
        }
    }

    // Stable sort (the old `sort_run`), sequentially — ordering, not
    // scheduling, is what equivalence depends on.
    for run in runs.iter_mut() {
        run.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    // Cloned-values reduce: the old `values_of` contract.
    let mut outputs = Vec::with_capacity(n_reduce);
    for run in &runs {
        let mut part_out = Vec::new();
        let mut values: Vec<Rec> = Vec::new();
        for group in groups(run) {
            values.clear();
            values.extend(group.iter().map(|(_, _, v)| v.clone()));
            part_out.push(pagerank_fold(group[0].0, values.iter()));
        }
        outputs.push(part_out);
    }
    outputs
}

#[test]
fn borrowed_values_reduce_is_byte_identical_to_cloned_reduce() {
    let graph = GraphGen::new(150, 900, 11).generate();
    let input: Vec<(u64, Rec)> = graph
        .iter()
        .map(|(i, links)| (*i, (links.clone(), 1.0)))
        .collect();
    let cfg = JobConfig {
        n_map: 4,
        n_reduce: 3,
        ..Default::default()
    };
    let pool = WorkerPool::new(3);

    // Production pipeline: borrowed Values over the sorted run.
    let reducer = |j: &u64, vs: Values<u64, Rec>, out: &mut Emitter<u64, Rec>| {
        let (k, v) = pagerank_fold(*j, vs.iter());
        out.emit(k, v);
    };
    let job = MapReduceJob::new(&cfg, &pagerank_mapper, &reducer, &HashPartitioner);
    let run = job.run(&pool, &input, 1).unwrap();

    // Reference pipeline: pre-refactor cloned path.
    let want = legacy_iteration(&input, cfg.n_map, cfg.n_reduce);

    assert_eq!(run.outputs.len(), want.len());
    for (p, (got, want)) in run.outputs.iter().zip(&want).enumerate() {
        assert_eq!(
            encode_to(got),
            encode_to(want),
            "partition {p}: byte-level output divergence"
        );
    }

    // And the shuffle meter agrees with what encoding would have charged.
    let mut expect_bytes = 0u64;
    let mut emitter = Emitter::new();
    for (k1, v1) in &input {
        pagerank_mapper(k1, v1, &mut emitter);
        for (k2, v2) in emitter.drain() {
            expect_bytes += (k2.encoded_len() + {
                let mut buf = Vec::new();
                v2.encode(&mut buf);
                buf.len()
            }) as u64;
        }
    }
    assert_eq!(run.metrics.shuffled_bytes, expect_bytes);
}

#[test]
fn values_view_is_order_preserving_over_sorted_groups() {
    // A focused check that Values::group yields the (K2, MK)-sorted order
    // the MRBGraph batch inherits (paper §3.4).
    let mut run: Vec<ShuffleRecord<u64, u32>> = vec![
        (5, MapKey(9), 90),
        (5, MapKey(1), 10),
        (2, MapKey(3), 30),
        (5, MapKey(4), 40),
    ];
    i2mapreduce::mapred::shuffle::sort_run(&mut run);
    let gs: Vec<_> = groups(&run).collect();
    assert_eq!(gs.len(), 2);
    let v5 = Values::group(gs[1]);
    assert_eq!(v5.iter().copied().collect::<Vec<_>>(), vec![10, 40, 90]);
    let _ = HashPartitioner.partition(&5u64, 3);
}
