//! Delta-iteration engine equivalence: the workset-driven engine must be
//! **byte-identical** to the incremental engine (`incr_iter`) — same f64
//! state bits, same per-shard MRBG-Store export bytes — on seeded
//! refreshes across churn levels, for both a retractable spec (PageRank)
//! and a monotonic one (SSSP). The engines share every arithmetic step;
//! only the scheduling differs, and these tests prove the scheduling is
//! invisible in the results.
//!
//! Also pins the workset accounting contract: on low-churn refreshes the
//! keys actually processed track the workset size, not the state width.

use i2mapreduce::algos::{pagerank, sssp};
use i2mapreduce::core::incr_iter::IncrParams;
use i2mapreduce::core::iterative::PreserveMode;
use i2mapreduce::datagen::delta::{graph_delta, weighted_graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::prelude::*;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-ditest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

const N: usize = 3;
const CHURNS: [(f64, &str); 3] = [(0.001, "0.1pct"), (0.01, "1pct"), (0.1, "10pct")];

/// Run one PageRank refresh through both engines on independently
/// converged stores; assert bitwise state and byte-identical exports.
/// Returns the delta run's total metrics.
fn pagerank_churn(
    churn: f64,
    tag: &str,
    params: IncrParams,
) -> i2mapreduce::common::metrics::JobMetrics {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = pagerank::PageRank::default();
    let graph = GraphGen::new(1000, 6000, 0xD17A).generate();

    let init = |suffix: &str| {
        pagerank::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            &spec,
            &scratch(&format!("pr-{tag}-{suffix}")),
            Default::default(),
            300,
            1e-11,
            PreserveMode::FinalOnly,
        )
        .unwrap()
    };
    let (mut data_full, st_full, _) = init("full");
    let (mut data_delta, st_delta, _) = init("delta");

    let delta = graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: churn,
            delete_fraction: 0.1,
            insert_fraction: 0.01,
            seed: 0xFEED,
        },
    );

    let (full_rep, _) = pagerank::i2mr_incremental(
        &pool,
        &cfg,
        &mut data_full,
        &st_full,
        &spec,
        &delta,
        params,
        None,
    )
    .unwrap();
    let (delta_rep, _) = pagerank::i2mr_delta(
        &pool,
        &cfg,
        &mut data_delta,
        &st_delta,
        &spec,
        &delta,
        params,
        None,
    )
    .unwrap();

    assert!(full_rep.converged, "{tag}: full engine did not converge");
    assert!(delta_rep.converged, "{tag}: delta engine did not converge");
    assert_eq!(
        full_rep.iterations.len(),
        delta_rep.iterations.len(),
        "{tag}: iteration counts diverged"
    );
    // Bitwise f64 equality, not a tolerance.
    assert_eq!(data_full.state, data_delta.state, "{tag}: state diverged");
    for p in 0..N {
        assert_eq!(
            st_full.export(p).unwrap(),
            st_delta.export(p).unwrap(),
            "{tag}: shard {p} export diverged"
        );
    }
    delta_rep.total_metrics()
}

fn exact_params() -> IncrParams {
    IncrParams {
        max_iterations: 500,
        convergence_epsilon: 1e-9,
        ..Default::default()
    }
}

#[test]
fn pagerank_delta_engine_byte_identical_across_churn_levels() {
    // Exact propagation (no CPC): the change wave may spread past the P∆
    // threshold and both engines must follow the fallback identically.
    for (churn, tag) in CHURNS {
        pagerank_churn(churn, tag, exact_params());
    }
}

#[test]
fn pagerank_delta_engine_byte_identical_with_cpc() {
    // With CPC the refresh stays closer to workset scheduling throughout.
    for (churn, tag) in CHURNS {
        pagerank_churn(
            churn,
            &format!("{tag}-cpc"),
            IncrParams {
                filter_threshold: Some(1e-3),
                ..exact_params()
            },
        );
    }
}

#[test]
fn pagerank_low_churn_work_tracks_workset_not_state_width() {
    // CPC damps the propagation wave and P∆ is disabled, so the whole
    // refresh stays delta-scheduled and the workset accounting is
    // observable end to end.
    let total = pagerank_churn(
        0.001,
        "metrics",
        IncrParams {
            filter_threshold: Some(0.01),
            pdelta_threshold: 2.0,
            ..exact_params()
        },
    );
    assert!(total.workset_keys > 0, "seeded delta must touch something");
    assert_eq!(total.jobs_started, 1, "one refresh job, no fallback");
    assert!(total.delta_iterations >= 1, "depth counter recorded");
    assert!(total.workset_skipped > 0, "CPC pruned workset candidates");
    // Keys processed ≈ workset: each workset key re-reduces its direct
    // dependents (mean out-degree 6 here), never the full state.
    assert!(
        total.reduce_invocations <= 4 * total.workset_keys,
        "reduce invocations {} not workset-bound (workset {})",
        total.reduce_invocations,
        total.workset_keys
    );
    let full_width = 1000 * total.delta_iterations;
    assert!(
        total.reduce_invocations < full_width / 4,
        "reduce invocations {} ~ full width {}",
        total.reduce_invocations,
        full_width
    );
}

/// Same shape for SSSP (monotonic contract, FT = 0, improvement-only
/// deltas).
fn sssp_churn(churn: f64, tag: &str) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let graph = GraphGen::new(1000, 6000, 0x55E0).weighted();

    let init = |suffix: &str| {
        sssp::i2mr_initial(
            &pool,
            &cfg,
            &graph,
            0,
            &scratch(&format!("sssp-{tag}-{suffix}")),
            Default::default(),
            300,
        )
        .unwrap()
    };
    let (mut data_full, st_full, _) = init("full");
    let (mut data_delta, st_delta, _) = init("delta");

    let delta = weighted_graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: churn,
            delete_fraction: 0.0,
            insert_fraction: 0.01,
            seed: 0xABBA,
        },
    );

    let (full_rep, _) =
        sssp::i2mr_incremental(&pool, &cfg, &mut data_full, &st_full, 0, &delta, 300).unwrap();
    let (delta_rep, _) =
        sssp::i2mr_delta(&pool, &cfg, &mut data_delta, &st_delta, 0, &delta, 300).unwrap();

    assert!(full_rep.converged && delta_rep.converged, "{tag}");
    assert_eq!(data_full.state, data_delta.state, "{tag}: state diverged");
    for p in 0..N {
        assert_eq!(
            st_full.export(p).unwrap(),
            st_delta.export(p).unwrap(),
            "{tag}: shard {p} export diverged"
        );
    }
}

#[test]
fn sssp_delta_engine_byte_identical_across_churn_levels() {
    for (churn, tag) in CHURNS {
        sssp_churn(churn, tag);
    }
}
