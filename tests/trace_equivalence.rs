//! The telemetry plane's core contracts:
//!
//! 1. **Observability never changes results.** A `TelemetryMode::Full` run
//!    must produce f64-bitwise-identical state and byte-identical store
//!    exports to an `Off` run from the same seeded inputs — tracing reads
//!    the computation, it never steers it.
//! 2. **The trace is exact, not approximate.** Under a chaos-soak schedule
//!    (seeded failpoints killing workers mid-task), retry / speculation
//!    spans in the trace match the drained `JobMetrics` counters exactly —
//!    both are emitted at the same executor sites.
//! 3. **The paper's tables fall out of a trace file.** `fig9` (per-stage
//!    wall time) and `table4` (store I/O) extracted from the exported
//!    JSONL equal the drained metrics, because stage samples and store-I/O
//!    deltas carry the one reading that fed the accumulators.
//! 4. **The trace is well-formed**: balanced start/end spans, strictly
//!    monotone per-worker sequence numbers, zero dropped events on these
//!    fixture sizes.

use i2mapreduce::algos::pagerank::PageRank;
use i2mapreduce::common::metrics::{IoStats, Stage, StageTimes};
use i2mapreduce::common::telemetry::{
    fig9, fig9_from_jsonl, table4, table4_from_jsonl, EventKind, TelemetryConfig, TelemetryMode,
    TraceLog,
};
use i2mapreduce::core::build_partitioned;
use i2mapreduce::datagen::delta::{graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::mapred::fault::{FailAction, FailSite, FailpointRegistry};
use i2mapreduce::mapred::pool::PoolConfig;
use i2mapreduce::prelude::*;
use i2mapreduce::store::runtime::StoreManager;
use std::sync::Arc;

const N: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "i2mr-trace-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exports(stores: &StoreManager) -> Vec<Vec<u8>> {
    (0..stores.n_shards())
        .map(|p| stores.export(p).unwrap())
        .collect()
}

/// Seeded PageRank: initial run with preservation, then an incremental
/// refresh, under the given telemetry config. Returns the final state,
/// the store exports, and the traces both sessions accumulated.
fn run_pagerank(
    tag: &str,
    telemetry: TelemetryConfig,
) -> (Vec<(u64, f64)>, Vec<Vec<u8>>, Vec<Option<TraceLog>>) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0x7ACE).generate();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0x7ACE));

    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .telemetry(telemetry.clone())
        .store_dir(scratch(tag))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    session.run_initial(&mut data).unwrap();
    let fin = session.finish().unwrap();
    let stores = fin.stores.expect("session-owned");
    let mut traces = vec![fin.trace];

    let refresh = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(IncrParams {
            convergence_epsilon: 1e-9,
            max_iterations: 80,
            ..Default::default()
        })
        .telemetry(telemetry)
        .stores_ref(&stores)
        .build()
        .unwrap();
    refresh.run_incremental(&mut data, &delta).unwrap();
    traces.push(refresh.finish().unwrap().trace);

    (data.state_snapshot(), exports(&stores), traces)
}

/// Contract 1: `Full` ≡ `Off`, bit for bit — and the traced run really
/// recorded spans (the equivalence is not vacuous).
#[test]
fn full_tracing_is_bitwise_identical_to_off() {
    let (state_off, stores_off, traces_off) = run_pagerank("off", TelemetryConfig::default());
    let (state_on, stores_on, traces_on) =
        run_pagerank("full", TelemetryConfig::with_mode(TelemetryMode::Full));

    assert!(
        traces_off.iter().all(Option::is_none),
        "Off must not allocate a recorder"
    );
    for (i, trace) in traces_on.iter().enumerate() {
        let log = trace.as_ref().expect("Full must hand back a trace");
        assert!(
            log.count_matching(|k| matches!(k, EventKind::TaskStart { .. })) > 0,
            "session {i}: no task spans recorded"
        );
        log.validate().unwrap();
        assert_eq!(log.dropped(), 0, "session {i}: events dropped");
    }

    assert_eq!(state_off.len(), state_on.len());
    for ((k_off, v_off), (k_on, v_on)) in state_off.iter().zip(&state_on) {
        assert_eq!(k_off, k_on);
        assert_eq!(
            v_off.to_bits(),
            v_on.to_bits(),
            "key {k_off}: Full tracing diverged from Off"
        );
    }
    assert_eq!(
        stores_off, stores_on,
        "store exports must be byte-identical"
    );
}

/// Contract 2: chaos-soak schedule replay. Workers die mid-task (seeded
/// `Panic` failpoints); the trace's retry / speculation spans must equal
/// the drained `JobMetrics::{retries,respeculations}` exactly — both are
/// emitted at the executor's counter-increment sites.
#[test]
fn chaos_replay_trace_matches_recovery_counters() {
    let cfg = JobConfig::symmetric(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0xC4A0).generate();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0xC4A0));

    // Fault-free initial run on a clean pool.
    let clean = WorkerPool::new(N);
    let init = RunBuilder::new(&spec)
        .pool(&clean)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .store_dir(scratch("chaos"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    init.run_initial(&mut data).unwrap();
    let stores = init.finish().unwrap().stores.expect("session-owned");

    let mut total_fired = 0u64;
    for r in 0..4u64 {
        // Refresh on a pool whose workers panic mid-task while the seeded
        // budget lasts; Full tracing on.
        let fp = Arc::new(FailpointRegistry::seeded(0xF00D + r, 2).arm(
            FailSite::TaskRun,
            0.5,
            FailAction::Panic,
        ));
        let chaos = WorkerPool::with_config(PoolConfig {
            failpoints: Arc::clone(&fp),
            ..PoolConfig::new(N)
        });
        let refresh = RunBuilder::new(&spec)
            .pool(&chaos)
            .job(cfg.clone())
            .incr(IncrParams {
                convergence_epsilon: 1e-9,
                max_iterations: 80,
                ..Default::default()
            })
            .telemetry(TelemetryConfig::with_mode(TelemetryMode::Full))
            .stores_ref(&stores)
            .build()
            .unwrap();
        let mut round_data = data.clone();
        let report = refresh.run_incremental(&mut round_data, &delta).unwrap();
        assert!(
            report.converged,
            "round {r}: faulted refresh did not converge"
        );
        total_fired += fp.fired();

        let log = refresh.finish().unwrap().trace.expect("Full trace");
        log.validate().unwrap();
        assert_eq!(log.dropped(), 0, "round {r}: events dropped");
        let retries: u64 = report.per_iteration.iter().map(|m| m.retries).sum();
        let respecs: u64 = report.per_iteration.iter().map(|m| m.respeculations).sum();
        assert_eq!(
            log.count_matching(|k| matches!(k, EventKind::Retry { .. })),
            retries,
            "round {r}: trace retry spans != drained JobMetrics::retries"
        );
        assert_eq!(
            log.count_matching(|k| matches!(k, EventKind::Speculate { .. })),
            respecs,
            "round {r}: trace speculate spans != drained respeculations"
        );
        // Every failed attempt shows up as an unsuccessful TaskEnd too.
        assert!(
            log.count_matching(|k| matches!(k, EventKind::TaskEnd { ok: false, .. }))
                >= fp.fired().min(retries),
            "round {r}: failed attempts missing from trace"
        );
    }
    // Rate 0.5, budget 2, four rounds: the soak must actually have fired.
    assert!(total_fired > 0, "failpoints never fired — test is vacuous");
}

/// Contracts 3 + 4: the paper's tables extracted from the exported JSONL
/// file equal the drained metrics, the Chrome export is written, and the
/// mid-run registry snapshot is live without any drain.
#[test]
fn exported_trace_reproduces_fig9_and_table4() {
    let dir = scratch("export");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.trace.jsonl");
    let chrome = dir.join("run.trace.json");

    let spec = PageRank::default();
    let graph = GraphGen::new(200, 1400, 0xF19).generate();
    let mut telemetry = TelemetryConfig::with_mode(TelemetryMode::Full);
    telemetry.jsonl_path = Some(jsonl.clone());
    telemetry.chrome_trace_path = Some(chrome.clone());

    let session = RunBuilder::new(&spec)
        .job(JobConfig::symmetric(N))
        .iter(IterParams {
            max_iterations: 40,
            epsilon: 1e-9,
            preserve: PreserveMode::EveryIteration,
        })
        .telemetry(telemetry)
        .store_dir(dir.join("stores"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    let report = session.run_initial(&mut data).unwrap();

    // Live mid-session visibility: counters without a drain or a fence.
    let snap = session.metrics_snapshot();
    assert!(snap.counter("trace.task_start") > 0, "registry not live");
    assert_eq!(
        snap.counter("trace.task_start"),
        snap.counter("trace.task_end"),
        "spans unbalanced in live counters"
    );
    assert_eq!(snap.gauge("executor.timeline_truncated"), 0);

    // The drained ground truth: every iteration's stage times and store
    // I/O, plus the trailing store work the final settle retires.
    let fin = session.finish().unwrap();
    let mut want_stages = StageTimes::default();
    let mut want_io = IoStats::default();
    for m in &report.per_iteration {
        for s in Stage::ALL {
            want_stages.add(s, m.stages.get(s));
        }
        want_io += m.store_io;
    }
    want_io += fin.trailing.store_io;

    let log = fin.trace.expect("Full trace");
    log.validate().unwrap();
    assert_eq!(log.dropped(), 0);
    assert_eq!(fig9(&log), want_stages, "fig9 from trace != drained stages");
    assert_eq!(
        table4(&log),
        want_io,
        "table4 from trace != drained store I/O"
    );

    // The file exporters carry the same tables.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert_eq!(fig9_from_jsonl(&text), want_stages, "fig9 from JSONL file");
    assert_eq!(table4_from_jsonl(&text), want_io, "table4 from JSONL file");
    // JSONL re-rendered from the same log is byte-identical to the file.
    assert_eq!(text, log.to_jsonl(), "JSONL sink != in-memory export");

    let chrome_text = std::fs::read_to_string(&chrome).unwrap();
    assert!(chrome_text.starts_with('[') && chrome_text.trim_end().ends_with(']'));
    assert_eq!(chrome_text, log.to_chrome_json(), "Chrome sink != export");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `Counters` mode: per-kind counts stay live, no spans are buffered, and
/// the run report renders the telemetry section (satellite: the executor
/// timeline truncation flag is surfaced, never silently dropped).
#[test]
fn counters_mode_counts_without_buffering() {
    let spec = PageRank::default();
    let graph = GraphGen::new(120, 700, 0xC0DE).generate();
    let session = RunBuilder::new(&spec)
        .job(JobConfig::symmetric(2))
        .iter(IterParams {
            max_iterations: 30,
            epsilon: 1e-9,
            preserve: PreserveMode::None,
        })
        .telemetry(TelemetryConfig::with_mode(TelemetryMode::Counters))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, 2, graph);
    let report = session.run_initial(&mut data).unwrap();

    let snap = session.metrics_snapshot();
    assert!(snap.counter("trace.task_start") > 0);
    assert!(snap.counter("trace.stage") > 0);

    let rendered = session.render_report(&report.per_iteration);
    assert!(rendered.contains("run report"));
    assert!(rendered.contains("trace.task_start"));
    assert!(rendered.contains("executor timeline truncated: false"));

    let log = session.finish().unwrap().trace.expect("recorder exists");
    assert_eq!(
        log.workers.iter().map(|w| w.events.len()).sum::<usize>(),
        0,
        "Counters mode must not buffer spans"
    );
}
