//! Smoke test: every doc-facing example must build, run, and pass its own
//! built-in verification (each example prints a `✔` line only after checking
//! its refreshed output against a from-scratch recomputation).
//!
//! Runs the examples through `cargo run --release` — release because the
//! engines crunch real (scaled-down) workloads, and because tier-1 CI builds
//! release first, so the artifacts are already cached when this test runs.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "pagerank_evolving",
    "sssp_roadnet",
    "kmeans_stream",
    "apriori_tweets",
];

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--release", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));

    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status.code(),
    );
    assert!(
        stdout.contains('✔'),
        "example {name} ran but never printed its verification mark:\n{stdout}"
    );
}

// One test per example so failures name the broken entry point directly and
// the (serialized, cargo-locked) subprocess builds don't hide each other.

#[test]
fn quickstart_runs_and_verifies() {
    run_example(EXAMPLES[0]);
}

#[test]
fn pagerank_evolving_runs_and_verifies() {
    run_example(EXAMPLES[1]);
}

#[test]
fn sssp_roadnet_runs_and_verifies() {
    run_example(EXAMPLES[2]);
}

#[test]
fn kmeans_stream_runs_and_verifies() {
    run_example(EXAMPLES[3]);
}

#[test]
fn apriori_tweets_runs_and_verifies() {
    run_example(EXAMPLES[4]);
}
