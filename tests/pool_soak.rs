//! Executor soak + interleaving stress: the CI scheduler job.
//!
//! The persistent work-stealing executor replaced spawn-per-call
//! scheduling, so its failure modes are now *races*: a fence that misses a
//! task, a steal that loses or duplicates work, a shutdown that drops
//! queued background compactions, batches from concurrent callers
//! corrupting each other's result slots. This suite hunts those loudly:
//!
//! * `soak_*` — seeded randomized task DAGs (chained batches whose inputs
//!   are the previous stage's outputs) interleaved with background
//!   epoch-tagged submissions and random fences, across many
//!   pool-size/seed combinations, with every result checked exactly.
//!   CI runs this under the `ci` profile (release codegen + debug
//!   assertions armed). `I2MR_SOAK_ROUNDS` scales the round count.
//! * `interleave_*` — a thread-interleaving stress smoke: many caller
//!   threads hammer one executor with overlapping batches and background
//!   work at once.
//!
//! The fence-semantics property ("a fence observes every task submitted
//! at or before its epoch and none after; shutdown drains what was
//! queued") is asserted both deterministically (gate-blocked later
//! epochs) and under the randomized soak.

use i2mapreduce::mapred::fault::{TaskId, TaskKind};
use i2mapreduce::mapred::pool::TaskSpec;
use i2mapreduce::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tid(kind: TaskKind, index: usize, iteration: u64) -> TaskId {
    TaskId {
        kind,
        index,
        iteration,
    }
}

fn soak_rounds(default: u64) -> u64 {
    std::env::var("I2MR_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One soak round: a randomized staged DAG on a fresh pool.
///
/// Stage `s` is a batch of tasks; task `t` of stage `s` reads the full
/// output vector of stage `s-1` (the DAG edge set), so any lost, stale,
/// or misdelivered result changes a checked value. Background tasks are
/// submitted between stages at monotonically increasing epochs; every
/// `fence(e)` asserts exactly the tasks at epochs `<= e` have run.
fn soak_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_workers = rng.gen_range(1..5usize);
    let pool = WorkerPool::new(n_workers);

    // Background bookkeeping: per-epoch expected and completed counts.
    let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
    let completed: Arc<parking_lot::Mutex<BTreeMap<u64, u64>>> =
        Arc::new(parking_lot::Mutex::new(BTreeMap::new()));

    let n_stages = rng.gen_range(1..6usize);
    let mut prev: Arc<Vec<u64>> = Arc::new((0..8u64).collect());
    for stage in 0..n_stages {
        // Background burst before the stage.
        if rng.gen_bool(0.7) {
            let epoch = pool.next_epoch();
            let n_bg = rng.gen_range(1..10u64);
            *expected.entry(epoch).or_insert(0) += n_bg;
            for i in 0..n_bg {
                let completed = Arc::clone(&completed);
                let sleep_us = rng.gen_range(0..300u64);
                pool.submit_at(
                    epoch,
                    TaskSpec::new(tid(TaskKind::Compact, i as usize, epoch), move |_| {
                        if sleep_us > 0 {
                            std::thread::sleep(Duration::from_micros(sleep_us));
                        }
                        *completed.lock().entry(epoch).or_insert(0) += 1;
                        Ok(())
                    }),
                );
            }
        }

        // The stage batch: each task folds the previous stage's outputs.
        let n_tasks = rng.gen_range(1..12usize);
        let inputs = Arc::clone(&prev);
        let tasks: Vec<TaskSpec<u64>> = (0..n_tasks)
            .map(|t| {
                let inputs = Arc::clone(&inputs);
                let pin = rng.gen_bool(0.5).then(|| rng.gen_range(0..n_workers));
                let sleep_us = rng.gen_range(0..200u64);
                let run = move |_attempt: u32| {
                    if sleep_us > 0 {
                        std::thread::sleep(Duration::from_micros(sleep_us));
                    }
                    Ok(inputs.iter().sum::<u64>() + t as u64)
                };
                match pin {
                    Some(w) => TaskSpec::pinned(tid(TaskKind::Map, t, stage as u64), w, run),
                    None => TaskSpec::new(tid(TaskKind::Map, t, stage as u64), run),
                }
            })
            .collect();
        let out = pool.run_tasks(tasks).unwrap();
        let base: u64 = prev.iter().sum();
        assert_eq!(
            out,
            (0..n_tasks as u64).map(|t| base + t).collect::<Vec<_>>(),
            "stage {stage}: batch results corrupted (seed {seed})"
        );
        prev = Arc::new(out);

        // Random fence: everything at or before the fenced epoch must have
        // completed; nothing later is required to.
        if rng.gen_bool(0.5) {
            if let Some((&e, _)) = expected.iter().next_back() {
                pool.fence(e).unwrap();
                let done = completed.lock();
                for (epoch, want) in expected.range(..=e) {
                    assert_eq!(
                        done.get(epoch),
                        Some(want),
                        "fence({e}) missed epoch {epoch} (seed {seed})"
                    );
                }
            }
        }
    }

    // Dropping the pool is a graceful shutdown: queued background work
    // must drain, never be dropped.
    drop(pool);
    let done = completed.lock();
    assert_eq!(
        *done, expected,
        "shutdown dropped queued background tasks (seed {seed})"
    );
}

#[test]
fn soak_randomized_task_dags_with_fences() {
    let rounds = soak_rounds(40);
    let base = std::env::var("I2MR_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FFEE_u64);
    for r in 0..rounds {
        soak_round(base.wrapping_add(r));
    }
}

#[test]
fn soak_fence_sees_all_prior_tasks_and_none_after() {
    // Deterministic fence-semantics property: a fence at epoch e returns
    // after every epoch-<=e task and does NOT wait for epoch-(e+1) tasks,
    // proven with gate-blocked later tasks.
    for pre in [0usize, 1, 3, 9] {
        for post in [1usize, 4] {
            let pool = WorkerPool::new(2);
            let done_pre = Arc::new(AtomicU64::new(0));
            let e1 = pool.next_epoch();
            for i in 0..pre {
                let c = Arc::clone(&done_pre);
                pool.submit_at(
                    e1,
                    TaskSpec::new(tid(TaskKind::Compact, i, 1), move |_| {
                        std::thread::sleep(Duration::from_micros(200));
                        c.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }),
                );
            }
            let gate = Arc::new(AtomicBool::new(false));
            let e2 = pool.next_epoch();
            for i in 0..post {
                let gate = Arc::clone(&gate);
                pool.submit_at(
                    e2,
                    TaskSpec::new(tid(TaskKind::Compact, i, 2), move |_| {
                        while !gate.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        Ok(())
                    }),
                );
            }
            pool.fence(e1).unwrap();
            assert_eq!(done_pre.load(Ordering::SeqCst), pre as u64);
            assert!(
                pool.pending_at_or_before(e2) > 0,
                "fence({e1}) waited for epoch {e2} tasks it must not observe"
            );
            gate.store(true, Ordering::SeqCst);
            pool.fence(e2).unwrap();
            assert_eq!(pool.pending_at_or_before(e2), 0);
        }
    }
}

#[test]
fn soak_shutdown_drains_queued_compactions() {
    // The real store plane: schedule policy-driven background compactions,
    // then shut down without fencing — the reclamation must still happen.
    use i2mapreduce::store::{CompactionPolicy, StoreManager, StoreRuntimeConfig};
    let dir = std::env::temp_dir().join(format!("i2mr-soak-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreRuntimeConfig {
        policy: CompactionPolicy {
            min_garbage_ratio: 0.2,
            min_batches: 2,
            min_file_bytes: 0,
        },
        ..Default::default()
    };

    let pool = WorkerPool::new(1);
    let before;
    {
        let mgr = StoreManager::create(&pool, &dir, 2, cfg).unwrap();
        use i2mapreduce::store::{Chunk, ChunkEntry};
        use i2mr_common::hash::MapKey;
        let batch = |v: u64| {
            (0..2)
                .map(|p| {
                    (0..16)
                        .map(|i| {
                            Chunk::new(
                                format!("k{p}-{i:03}").into_bytes(),
                                vec![ChunkEntry {
                                    mk: MapKey(v as u128),
                                    value: vec![v as u8; 64],
                                }],
                            )
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        mgr.append_batch_all(0, batch(0)).unwrap();
        for round in 1..=4u64 {
            mgr.merge_apply_all(round, |p| {
                use i2mapreduce::store::{DeltaChunk, DeltaEntry};
                Ok((0..16)
                    .map(|i| DeltaChunk {
                        key: format!("k{p}-{i:03}").into_bytes(),
                        entries: vec![
                            DeltaEntry::Delete(MapKey(round as u128 - 1)),
                            DeltaEntry::Insert(MapKey(round as u128), vec![round as u8; 64]),
                        ],
                    })
                    .collect())
            })
            .unwrap();
        }
        before = mgr.file_bytes();
        assert!(mgr.schedule_compactions(5).unwrap() > 0, "nothing was due");
        // No fence and no drop (StoreManager::drop would settle the work
        // itself): shutdown alone must drain the queued Compact tasks.
        pool.shutdown();
        assert!(
            mgr.file_bytes() < before,
            "shutdown dropped queued compactions instead of draining them"
        );
    }
}

#[test]
fn interleave_concurrent_batches_stress() {
    // Many caller threads share one executor; every batch's results must
    // come back intact and in submission order.
    let pool = WorkerPool::new(3);
    let rounds = soak_rounds(30);
    std::thread::scope(|scope| {
        for caller in 0..8u64 {
            let pool = pool.clone();
            scope.spawn(move || {
                for round in 0..rounds {
                    let n = 1 + ((caller + round) % 9) as usize;
                    let tasks: Vec<TaskSpec<u64>> = (0..n)
                        .map(|t| {
                            let v = caller * 10_000 + round * 100 + t as u64;
                            TaskSpec::new(tid(TaskKind::Map, t, round), move |_| Ok(v))
                        })
                        .collect();
                    let out = pool.run_tasks(tasks).unwrap();
                    let want: Vec<u64> = (0..n as u64)
                        .map(|t| caller * 10_000 + round * 100 + t)
                        .collect();
                    assert_eq!(out, want, "caller {caller} round {round}");
                }
            });
        }
    });
}

#[test]
fn interleave_background_work_with_batches() {
    // Background epoch work keeps flowing while batches run; fences from a
    // second thread stay correct throughout.
    let pool = WorkerPool::new(2);
    let counter = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let pool = pool.clone();
            let counter = Arc::clone(&counter);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut submitted = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let e = pool.next_epoch();
                    for i in 0..4 {
                        let c = Arc::clone(&counter);
                        pool.submit_at(
                            e,
                            TaskSpec::new(tid(TaskKind::Compact, i, e), move |_| {
                                c.fetch_add(1, Ordering::SeqCst);
                                Ok(())
                            }),
                        );
                    }
                    submitted += 4;
                    pool.fence(e).unwrap();
                    assert_eq!(counter.load(Ordering::SeqCst), submitted);
                }
            });
        }
        for round in 0..soak_rounds(40) {
            let tasks: Vec<TaskSpec<u64>> = (0..6)
                .map(|t| TaskSpec::new(tid(TaskKind::Map, t, round), move |_| Ok(round + t as u64)))
                .collect();
            let out = pool.run_tasks(tasks).unwrap();
            assert_eq!(out, (0..6).map(|t| round + t).collect::<Vec<_>>());
        }
        stop.store(true, Ordering::SeqCst);
    });
}
