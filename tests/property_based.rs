//! Property-based tests (proptest) on the core invariants.
//!
//! * **Store model-checking**: an `MrbgStore` driven by arbitrary
//!   insert/delete/update/compact sequences behaves exactly like an
//!   in-memory `HashMap<key, BTreeMap<mk, value>>` model.
//! * **Incremental ≡ recompute**: for arbitrary datasets and arbitrary
//!   valid deltas, the one-step incremental engine's refreshed output
//!   equals a from-scratch re-computation.
//! * **Codec round-trips** for composite kv types.
//! * **Partitioning co-location**: arbitrary structure keys always land in
//!   their projected state key's partition.

use i2mapreduce::common::codec::{decode_exact, encode_to};
use i2mapreduce::common::hash::MapKey;
use i2mapreduce::prelude::*;
use i2mapreduce::store::{Chunk, ChunkEntry, MrbgStore};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "i2mr-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

// ---------------------------------------------------------------------------
// Store model checking
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum StoreOp {
    /// Merge a batch of per-key edge changes.
    Merge(Vec<(u8, Vec<(u8, Option<u8>)>)>),
    /// Offline compaction.
    Compact,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        4 => proptest::collection::vec(
            (
                0u8..12,
                proptest::collection::vec((0u8..6, proptest::option::of(any::<u8>())), 1..4),
            ),
            1..6,
        )
        .prop_map(StoreOp::Merge),
        1 => Just(StoreOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(store_op(), 1..12), tag in 0u64..u64::MAX) {
        let mut store = MrbgStore::create(scratch(&format!("model-{tag}")), StoreConfig::default()).unwrap();
        let mut model: HashMap<Vec<u8>, BTreeMap<u128, Vec<u8>>> = HashMap::new();

        for op in ops {
            match op {
                StoreOp::Merge(groups) => {
                    // Collapse duplicate keys within one merge batch (the
                    // engine's shuffle grouping guarantees distinct keys).
                    let mut by_key: BTreeMap<Vec<u8>, Vec<(u8, Option<u8>)>> = BTreeMap::new();
                    for (k, entries) in groups {
                        by_key.entry(vec![k]).or_default().extend(entries);
                    }
                    let deltas: Vec<i2mapreduce::store::DeltaChunk> = by_key
                        .iter()
                        .map(|(key, entries)| i2mapreduce::store::DeltaChunk {
                            key: key.clone(),
                            entries: entries
                                .iter()
                                .map(|(mk, v)| match v {
                                    Some(b) => i2mapreduce::store::DeltaEntry::Insert(
                                        MapKey(*mk as u128),
                                        vec![*b],
                                    ),
                                    None => i2mapreduce::store::DeltaEntry::Delete(MapKey(*mk as u128)),
                                })
                                .collect(),
                        })
                        .collect();
                    store.merge_apply(deltas).unwrap();

                    // Apply the same semantics to the model: deletes first,
                    // then upserts, per key.
                    for (key, entries) in by_key {
                        let slot = model.entry(key.clone()).or_default();
                        for (mk, v) in &entries {
                            if v.is_none() {
                                slot.remove(&(*mk as u128));
                            }
                        }
                        for (mk, v) in &entries {
                            if let Some(b) = v {
                                slot.insert(*mk as u128, vec![*b]);
                            }
                        }
                        if model.get(&key).is_some_and(BTreeMap::is_empty) {
                            model.remove(&key);
                        }
                    }
                }
                StoreOp::Compact => {
                    let before: Vec<Chunk> =
                        store.all_chunks().unwrap();
                    let stats = store.compact().unwrap();
                    // Compaction preserves the exact chunk set (same keys,
                    // same entries, canonical order), collapses the file to
                    // one batch, and is idempotent: a second pass finds
                    // nothing to reclaim and exports byte-identically.
                    prop_assert_eq!(&store.all_chunks().unwrap(), &before);
                    prop_assert_eq!(store.n_batches(), 1);
                    prop_assert_eq!(stats.live_chunks as usize, before.len());
                    let exported = store.export().unwrap();
                    let again = store.compact().unwrap();
                    prop_assert_eq!(again.reclaimed(), 0);
                    prop_assert_eq!(again.batches_before, 1);
                    prop_assert_eq!(store.export().unwrap(), exported);
                }
            }

            // Invariant: live key set and every chunk's contents match,
            // through both read paths (exclusive `get` and the detached
            // split-read `get_with`).
            prop_assert_eq!(store.len(), model.len());
            let mut reader = store.reader().unwrap();
            for (key, want) in &model {
                let chunk = store.get(key).unwrap().expect("model key missing in store");
                let got: BTreeMap<u128, Vec<u8>> = chunk
                    .entries
                    .iter()
                    .map(|e| (e.mk.0, e.value.clone()))
                    .collect();
                prop_assert_eq!(&got, want);
                let via_reader = store
                    .get_with(&mut reader, key)
                    .unwrap()
                    .expect("split read path missed a live key");
                prop_assert_eq!(via_reader, chunk);
            }
            // Streaming chunks_iter yields the exact live set in canonical
            // (lexicographic) key order.
            let streamed: Vec<Chunk> = store.chunks_iter().collect::<Result<_, _>>().unwrap();
            prop_assert_eq!(streamed.len(), model.len());
            let mut want_keys: Vec<Vec<u8>> = model.keys().cloned().collect();
            want_keys.sort();
            let got_keys: Vec<Vec<u8>> = streamed.iter().map(|c| c.key.clone()).collect();
            prop_assert_eq!(got_keys, want_keys);
        }
    }

    #[test]
    fn chunk_codec_roundtrips(key in proptest::collection::vec(any::<u8>(), 0..24),
                              entries in proptest::collection::vec((any::<u128>(), proptest::collection::vec(any::<u8>(), 0..16)), 0..8)) {
        let chunk = Chunk::new(
            key,
            entries
                .into_iter()
                .map(|(mk, value)| ChunkEntry { mk: MapKey(mk), value })
                .collect(),
        );
        let mut buf = Vec::new();
        chunk.encode(&mut buf);
        prop_assert_eq!(buf.len(), chunk.encoded_len());
        let mut cur = buf.as_slice();
        let decoded = Chunk::decode(&mut cur).unwrap();
        prop_assert!(cur.is_empty());
        prop_assert_eq!(decoded, chunk);
    }

    #[test]
    fn composite_codec_roundtrips(pairs in proptest::collection::vec((any::<u64>(), any::<f64>(), ".{0,12}"), 0..16)) {
        let value: Vec<(u64, f64, String)> = pairs;
        let encoded = encode_to(&value);
        let decoded: Vec<(u64, f64, String)> = decode_exact(&encoded).unwrap();
        prop_assert_eq!(decoded.len(), value.len());
        for ((a1, b1, c1), (a2, b2, c2)) in decoded.iter().zip(&value) {
            prop_assert_eq!(a1, a2);
            prop_assert!((b1 == b2) || (b1.is_nan() && b2.is_nan()));
            prop_assert_eq!(c1, c2);
        }
    }

    #[test]
    fn projected_partitioning_co_locates(sks in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..64), n in 1usize..9) {
        // Structure keys (i, j) projecting to j must land where state key j
        // lands, for any partition count.
        use i2mapreduce::mapred::Partitioner;
        for (i, j) in sks {
            let state_partition = Partitioner::partition(&HashPartitioner, &j, n);
            let proj = encode_to(&j);
            let structure_partition =
                i2mapreduce::mapred::HashPartitioner::partition_bytes(&proj, n);
            prop_assert_eq!(state_partition, structure_partition, "({}, {})", i, j);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental ≡ recompute, property-based
// ---------------------------------------------------------------------------

/// Arbitrary dataset: records (key, set of (dst, weight)) — the in-edge-sum
/// application of paper Fig. 3.
fn dataset() -> impl Strategy<Value = Vec<(u64, String)>> {
    // Destinations are map keys: a record never lists the same destination
    // twice ((K2, MK) identifies an MRBGraph edge, so a map instance emits
    // one value per key — paper §3.2).
    proptest::collection::vec(
        proptest::collection::btree_map(0u64..30, 1u32..100, 0..4),
        1..40,
    )
    .prop_map(|records| {
        records
            .into_iter()
            .enumerate()
            .map(|(i, edges)| {
                let adj: Vec<String> = edges
                    .into_iter()
                    .map(|(dst, w)| format!("{dst}:{}", w as f64 / 10.0))
                    .collect();
                (i as u64, adj.join(";"))
            })
            .collect()
    })
}

fn edge_mapper(_src: &u64, adj: &String, out: &mut Emitter<u64, f64>) {
    for part in adj.split(';').filter(|s| !s.is_empty()) {
        let (dst, w) = part.split_once(':').unwrap();
        out.emit(dst.parse().unwrap(), w.parse().unwrap());
    }
}

fn sum_reducer(k: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>) {
    out.emit(*k, vs.iter().sum());
}

fn oracle(input: &[(u64, String)]) -> Vec<(u64, f64)> {
    let mut sums: BTreeMap<u64, f64> = BTreeMap::new();
    let mut e = Emitter::new();
    for (k, v) in input {
        edge_mapper(k, v, &mut e);
    }
    for (dst, w) in e.into_pairs() {
        *sums.entry(dst).or_insert(0.0) += w;
    }
    sums.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn onestep_incremental_equals_recompute(
        base in dataset(),
        choices in proptest::collection::vec((0u64..40, 0u8..3, proptest::collection::btree_map(0u64..30, 1u32..100, 0..3)), 0..8),
        tag in 0u64..u64::MAX,
    ) {
        let pool = WorkerPool::new(2);
        let mut engine: OneStepEngine<u64, String, u64, f64, u64, f64> = OneStepEngine::create(
            &pool,
            scratch(&format!("prop-eq-{tag}")),
            JobConfig::symmetric(2),
            StoreConfig::default(),
        )
        .unwrap();
        engine
            .initial(&base, &edge_mapper, &HashPartitioner, &sum_reducer)
            .unwrap();

        // Build a *valid* delta from arbitrary choices: a delta is a set
        // difference, so deletes/updates may only reference records that
        // existed before the delta (a record inserted by this delta cannot
        // also be deleted by it), and each pre-existing record is touched
        // at most once.
        let mut live: BTreeMap<u64, String> = base.iter().cloned().collect();
        let mut untouched: BTreeMap<u64, String> = live.clone();
        let mut delta: Delta<u64, String> = Delta::new();
        let mut next_fresh = 1000u64;
        for (pick, op, edges) in choices {
            let adj: Vec<String> = edges
                .into_iter()
                .map(|(dst, w)| format!("{dst}:{}", w as f64 / 10.0))
                .collect();
            let adj = adj.join(";");
            match op {
                0 => {
                    // insert fresh record
                    delta.insert(next_fresh, adj.clone());
                    live.insert(next_fresh, adj);
                    next_fresh += 1;
                }
                1 => {
                    // delete a pre-existing, untouched record (if any)
                    if untouched.is_empty() {
                        continue;
                    }
                    let &k = untouched
                        .keys()
                        .nth(pick as usize % untouched.len())
                        .unwrap();
                    let old = untouched.remove(&k).unwrap();
                    live.remove(&k);
                    delta.delete(k, old);
                }
                _ => {
                    // update a pre-existing, untouched record (if any)
                    if untouched.is_empty() {
                        continue;
                    }
                    let &k = untouched
                        .keys()
                        .nth(pick as usize % untouched.len())
                        .unwrap();
                    let old = untouched.remove(&k).unwrap();
                    live.insert(k, adj.clone());
                    delta.update(k, old, adj);
                }
            }
        }

        engine
            .incremental(&delta, &edge_mapper, &HashPartitioner, &sum_reducer)
            .unwrap();

        let updated: Vec<(u64, String)> = live.into_iter().collect();
        let want = oracle(&updated);
        let got = engine.output();
        prop_assert_eq!(got.len(), want.len(), "key sets differ");
        for ((ka, va), (kb, vb)) in got.iter().zip(&want) {
            prop_assert_eq!(ka, kb);
            prop_assert!((va - vb).abs() < 1e-9, "key {}: {} vs {}", ka, va, vb);
        }
    }
}

// ---------------------------------------------------------------------------
// Sized codecs: encoded_len() == encode_to().len(), exactly, for every impl
// ---------------------------------------------------------------------------

/// The contract `metered_size` relies on: pricing a record must agree with
/// what serializing it would have produced, byte for byte.
fn prop_sized<T: i2mapreduce::common::codec::Codec>(v: &T) {
    assert_eq!(
        v.encoded_len(),
        encode_to(v).len(),
        "encoded_len drifted from encode"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn encoded_len_matches_encoding_unsigned(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(), e in any::<usize>(), f in any::<u128>()) {
        prop_sized(&a);
        prop_sized(&b);
        prop_sized(&c);
        prop_sized(&d);
        prop_sized(&e);
        prop_sized(&f);
        // Varint boundaries get deliberate coverage beyond random draws.
        for v in [0u64, 127, 128, 16383, 16384, (1 << 63) - 1, u64::MAX] {
            prop_sized(&v);
        }
    }

    #[test]
    fn encoded_len_matches_encoding_signed(a in any::<i8>(), b in any::<i16>(), c in any::<i32>(), d in any::<i64>(), e in any::<isize>()) {
        prop_sized(&a);
        prop_sized(&b);
        prop_sized(&c);
        prop_sized(&d);
        prop_sized(&e);
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            prop_sized(&v);
        }
    }

    #[test]
    fn encoded_len_matches_encoding_floats_bool_unit(x in any::<f32>(), y in any::<f64>(), b in any::<bool>()) {
        prop_sized(&x);
        prop_sized(&y);
        prop_sized(&b);
        prop_sized(&());
    }

    #[test]
    fn encoded_len_matches_encoding_strings_and_vecs(s in ".{0,40}", v in proptest::collection::vec(any::<u64>(), 0..32)) {
        prop_sized(&s);
        prop_sized(&v);
        prop_sized(&Some(s.clone()));
        prop_sized(&Option::<String>::None);
        prop_sized(&vec![s.clone(); 3]);
    }

    #[test]
    fn encoded_len_matches_encoding_composites(pairs in proptest::collection::vec((any::<u64>(), any::<f64>(), ".{0,12}"), 0..16), tag in any::<u8>()) {
        // Tuples of every supported arity, nested options and vecs.
        prop_sized(&(tag,));
        prop_sized(&(tag, pairs.len() as u64));
        prop_sized(&(tag, pairs.len() as u64, 0.5f32));
        prop_sized(&(tag, pairs.len() as u64, 0.5f32, true));
        prop_sized(&pairs);
        prop_sized(&Some(vec![Some(1u32), None]));
    }

    #[test]
    fn encoded_len_matches_encoding_downstream_impls(
        blocks in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<f64>()), 0..12),
        vecv in proptest::collection::vec(any::<f64>(), 0..12),
        name in ".{0,16}",
        len in any::<u64>(),
        ids in proptest::collection::vec((any::<u64>(), any::<u64>(), 0usize..8), 0..6),
    ) {
        // The two Codec impls outside i2mr-common must honor the same law.
        prop_sized(&i2mapreduce::algos::gimv::GimvMsg::Block(blocks));
        prop_sized(&i2mapreduce::algos::gimv::GimvMsg::Vector(vecv));
        let meta = i2mapreduce::dfs::FileMeta {
            name,
            len,
            blocks: ids
                .into_iter()
                .map(|(id, blen, worker)| i2mapreduce::dfs::BlockMeta {
                    id: i2mapreduce::dfs::BlockId(id),
                    len: blen,
                    home_worker: worker,
                })
                .collect(),
        };
        prop_sized(&meta);
    }
}

// ---------------------------------------------------------------------------
// Workset contract (delta-iteration engine)
// ---------------------------------------------------------------------------
//
// The delta-iteration engine's scheduling contract, model-checked over
// random graphs and deltas:
//
// * workset emptiness ⇔ fixed point: the engine reports convergence
//   exactly when an iteration emits nothing, and each iteration's workset
//   is the previous iteration's emissions;
// * a retraction followed by re-insertion of the same record converges
//   back to the original solution set;
// * an empty-delta refresh terminates in one (empty-workset) iteration
//   without perturbing a single state bit.

use i2mapreduce::core::iterative::DependencyKind;
use i2mapreduce::store::StoreManager;

/// PageRank-like retractable spec for the workset properties.
struct PropRank;

impl IterativeSpec for PropRank {
    type SK = u64;
    type SV = Vec<u64>;
    type DK = u64;
    type DV = f64;
    type V2 = f64;

    fn project(&self, sk: &u64) -> u64 {
        *sk
    }
    fn map(&self, _sk: &u64, sv: &Vec<u64>, _dk: &u64, dv: &f64, out: &mut Emitter<u64, f64>) {
        if sv.is_empty() {
            return;
        }
        let share = dv / sv.len() as f64;
        for j in sv {
            out.emit(*j, share);
        }
    }
    fn reduce(&self, _dk: &u64, _prev: &f64, values: Values<'_, u64, f64>) -> f64 {
        0.15 + 0.85 * values.iter().sum::<f64>()
    }
    fn init(&self, _dk: &u64) -> f64 {
        1.0
    }
    fn difference(&self, curr: &f64, prev: &f64) -> f64 {
        (curr - prev).abs()
    }
    fn dependency(&self) -> DependencyKind {
        DependencyKind::OneToOne
    }
}

impl DeltaIterativeSpec for PropRank {
    fn contract(&self) -> UpdateContract {
        UpdateContract::Retractable
    }
}

const WS_PARTS: usize = 2;

fn ws_graph(n: u64, stride: u64) -> Vec<(u64, Vec<u64>)> {
    (0..n)
        .map(|i| {
            let mut out = vec![(i + 1) % n];
            if i % 3 == 0 {
                let chord = (i + stride) % n;
                if !out.contains(&chord) {
                    out.push(chord);
                }
            }
            out.sort_unstable();
            (i, out)
        })
        .collect()
}

fn ws_converge(
    graph: Vec<(u64, Vec<u64>)>,
    pool: &WorkerPool,
    tag: &str,
) -> (
    i2mapreduce::core::PartitionedData<u64, Vec<u64>, u64, f64>,
    StoreManager,
) {
    let stores = StoreManager::create(
        pool,
        scratch(&format!("ws-{tag}")),
        WS_PARTS,
        Default::default(),
    )
    .unwrap();
    let session = RunBuilder::new(&PropRank)
        .pool(pool)
        .job(JobConfig::symmetric(WS_PARTS))
        .iter(IterParams {
            max_iterations: 200,
            epsilon: 1e-12,
            preserve: PreserveMode::FinalOnly,
        })
        .stores_ref(&stores)
        .build()
        .unwrap();
    let mut data = i2mapreduce::core::build_partitioned(&PropRank, WS_PARTS, graph);
    assert!(session.run_initial(&mut data).unwrap().converged);
    drop(session);
    (data, stores)
}

fn ws_session<'s>(pool: &WorkerPool, stores: &'s StoreManager) -> RunSession<'s, PropRank> {
    RunBuilder::new(&PropRank)
        .pool(pool)
        .job(JobConfig::symmetric(WS_PARTS))
        .incr(IncrParams {
            max_iterations: 300,
            // Keep every iteration workset-scheduled: these properties
            // are about the delta loop, not the P∆ fallback.
            pdelta_threshold: 2.0,
            ..Default::default()
        })
        .stores_ref(stores)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn workset_empty_iff_fixed_point(
        n in 12u64..32,
        stride in 2u64..7,
        v in 0u64..12,
        t in 0u64..32,
    ) {
        let pool = WorkerPool::new(WS_PARTS);
        let graph = ws_graph(n, stride);
        let (mut data, stores) = ws_converge(graph.clone(), &pool, "iff");

        // Rewire vertex v's out-list to a single (possibly new) target.
        let target = t % n;
        let mut delta: Delta<u64, Vec<u64>> = Delta::new();
        let old = graph[v as usize].1.clone();
        let mut new = vec![if target == v { (v + 1) % n } else { target }];
        if new == old {
            // Guarantee a real change: widen the out-list instead.
            new.push((new[0] + 1) % n);
            new.sort_unstable();
            new.dedup();
        }
        delta.update(v, old, new);

        let report = ws_session(&pool, &stores).run_delta(&mut data, &delta).unwrap();

        // Convergence ⇔ the final iteration emitted an empty workset.
        let last_emitted = report.iterations.last().unwrap().changed_keys;
        prop_assert_eq!(report.converged, last_emitted == 0);
        // Every iteration's workset is the previous iteration's emissions,
        // and a non-final iteration always carries a non-empty workset.
        prop_assert_eq!(report.worksets[0], delta.records().len() as u64);
        for i in 1..report.worksets.len() {
            prop_assert_eq!(report.worksets[i], report.iterations[i - 1].changed_keys);
            prop_assert!(report.worksets[i] > 0, "empty workset must have stopped the run");
        }
    }

    #[test]
    fn retraction_then_reinsertion_restores_the_solution_set(
        n in 12u64..32,
        stride in 2u64..7,
        v in 0u64..12,
    ) {
        let pool = WorkerPool::new(WS_PARTS);
        let graph = ws_graph(n, stride);
        let (mut data, stores) = ws_converge(graph.clone(), &pool, "retract");
        let baseline = data.state_snapshot();

        let record = graph[v as usize].clone();
        let session = ws_session(&pool, &stores);

        // Retract the record, converge, then re-insert it and converge.
        let mut retract: Delta<u64, Vec<u64>> = Delta::new();
        retract.delete(record.0, record.1.clone());
        let rep = session.run_delta(&mut data, &retract).unwrap();
        prop_assert!(rep.converged);

        let mut reinsert: Delta<u64, Vec<u64>> = Delta::new();
        reinsert.insert(record.0, record.1.clone());
        let rep = session.run_delta(&mut data, &reinsert).unwrap();
        prop_assert!(rep.converged);

        // Same solution set: identical keys, values back at the original
        // fixed point (numerically — the walk back re-approaches it).
        let restored = data.state_snapshot();
        prop_assert_eq!(
            baseline.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            restored.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        );
        for ((k, a), (_, b)) in baseline.iter().zip(&restored) {
            prop_assert!((a - b).abs() < 1e-4, "key {}: {} vs {}", k, a, b);
        }
    }

    #[test]
    fn empty_delta_refresh_terminates_in_one_iteration(
        n in 12u64..32,
        stride in 2u64..7,
    ) {
        let pool = WorkerPool::new(WS_PARTS);
        let graph = ws_graph(n, stride);
        let (mut data, stores) = ws_converge(graph, &pool, "noop");
        let before = data.state_snapshot();

        let delta: Delta<u64, Vec<u64>> = Delta::new();
        let report = ws_session(&pool, &stores).run_delta(&mut data, &delta).unwrap();
        prop_assert!(report.converged);
        prop_assert_eq!(report.iterations.len(), 1);
        prop_assert_eq!(report.iterations[0].changed_keys, 0);
        prop_assert_eq!(&report.worksets, &vec![0]);
        // Not a single state bit moved.
        prop_assert_eq!(data.state_snapshot(), before);
    }
}

// ---------------------------------------------------------------------------
// Tuner controller laws (the invariants TUNING.md promises)
// ---------------------------------------------------------------------------
//
// * **Bounded**: for any valid spec, any initial value, and any signal
//   sequence, the knob never leaves `[lo, hi]` and never moves by more
//   than `|step|` in one update.
// * **Monotone in the driving signal**: from identical controller state,
//   a larger signal never yields a smaller knob value (for positive
//   step; the order flips with negative step).

use i2mapreduce::common::tuner::{KnobController, KnobSpec};

/// Arbitrary *valid* knob spec: finite bounds with `lo <= hi`,
/// non-negative deadband (the `KnobSpec::is_valid` contract).
fn knob_spec() -> impl Strategy<Value = KnobSpec> {
    (
        -100.0f64..100.0,
        0.0f64..200.0,
        -50.0f64..50.0,
        -100.0f64..100.0,
        0.0f64..20.0,
        0u32..3,
    )
        .prop_map(|(lo, width, step, target, deadband, cooldown)| KnobSpec {
            lo,
            hi: lo + width,
            step,
            target,
            deadband,
            cooldown,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn knob_updates_stay_within_clamp_bounds(
        spec in knob_spec(),
        initial in -200.0f64..200.0,
        signals in proptest::collection::vec(
            prop_oneof![
                -1e6f64..1e6,
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            1..32,
        ),
    ) {
        prop_assert!(spec.is_valid());
        let mut c = KnobController::new(spec, initial);
        prop_assert!(c.value() >= spec.lo && c.value() <= spec.hi);
        for s in signals {
            let before = c.value();
            let u = c.update(s);
            prop_assert_eq!(u.before, before);
            prop_assert_eq!(u.after, c.value());
            // Always inside the clamp…
            prop_assert!(c.value() >= spec.lo && c.value() <= spec.hi,
                "value {} escaped [{}, {}]", c.value(), spec.lo, spec.hi);
            // …and one update moves by at most |step|.
            prop_assert!((u.after - u.before).abs() <= spec.step.abs() + 1e-12,
                "move {} exceeded |step| {}", (u.after - u.before).abs(), spec.step.abs());
            // A hold reports itself as one.
            if !u.moved {
                prop_assert_eq!(u.before, u.after);
            }
        }
    }

    #[test]
    fn knob_update_is_monotone_in_the_driving_signal(
        spec in knob_spec(),
        initial in -200.0f64..200.0,
        s1 in -1e6f64..1e6,
        s2 in -1e6f64..1e6,
    ) {
        let (lo_sig, hi_sig) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        // Identical controller state, two signals: the response ordering
        // follows the step's orientation.
        let base = KnobController::new(spec, initial);
        let mut a = base.clone();
        let mut b = base.clone();
        let after_lo = a.update(lo_sig).after;
        let after_hi = b.update(hi_sig).after;
        if spec.step >= 0.0 {
            prop_assert!(after_lo <= after_hi,
                "positive step must not respond to a larger signal with a smaller knob: {after_lo} > {after_hi}");
        } else {
            prop_assert!(after_lo >= after_hi,
                "negative step must not respond to a larger signal with a larger knob: {after_lo} < {after_hi}");
        }
    }
}
