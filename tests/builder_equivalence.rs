//! The `RunBuilder` surface is a pure re-fronting of the engines:
//!
//! * **Builder ≡ legacy**: a session-built run produces bit-identical
//!   state and byte-identical store exports to the deprecated
//!   per-engine constructors, for both the initial and the refresh
//!   paths (seeded PageRank and SSSP).
//! * **Read-your-writes through serving**: a `ServeHandle` opened on a
//!   session's store plane observes an incremental refresh's writes,
//!   across a forced compaction generation bump.
//! * **Cursor ingestion**: invalidations recompute exactly the affected
//!   keys, a producer-side config bump stales the cursor, and
//!   re-beginning it recovers.

#![allow(deprecated)] // the point: legacy constructors vs the builder

use i2mapreduce::algos::{pagerank::PageRank, sssp::Sssp};
use i2mapreduce::core::build_partitioned;
use i2mapreduce::core::ingest::{IngestCursor, MemSource};
use i2mapreduce::datagen::delta::{graph_delta, weighted_graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::prelude::*;
use i2mapreduce::store::runtime::StoreManager;
use i2mapreduce::store::Chunk;

const N: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "i2mr-builder-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exports(stores: &StoreManager) -> Vec<Vec<u8>> {
    (0..stores.n_shards())
        .map(|p| stores.export(p).unwrap())
        .collect()
}

/// PageRank: initial run + incremental refresh through the builder and
/// through the deprecated constructors, from the same seeded inputs.
#[test]
fn pagerank_builder_matches_legacy_engines() {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0xB11D).generate();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0xB11D));
    let initial = IterParams {
        max_iterations: 80,
        epsilon: 1e-9,
        preserve: PreserveMode::FinalOnly,
    };
    let incr = IncrParams {
        convergence_epsilon: 1e-9,
        max_iterations: 80,
        ..Default::default()
    };

    // Legacy path.
    let legacy_stores =
        StoreManager::create(&pool, scratch("pr-legacy"), N, Default::default()).unwrap();
    let mut legacy_data = build_partitioned(&spec, N, graph.clone());
    PartitionedIterEngine::new(&spec, cfg.clone(), initial)
        .unwrap()
        .run(&pool, &mut legacy_data, Some(&legacy_stores))
        .unwrap();
    IncrIterEngine::new(&spec, cfg.clone(), incr, IterParams::default())
        .unwrap()
        .run(&pool, &mut legacy_data, &legacy_stores, &delta, None)
        .unwrap();

    // Builder path.
    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(initial)
        .store_dir(scratch("pr-builder"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    session.run_initial(&mut data).unwrap();
    let stores = session.finish().unwrap().stores.expect("session-owned");
    let refresh = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(incr)
        .stores_ref(&stores)
        .build()
        .unwrap();
    refresh.run_incremental(&mut data, &delta).unwrap();

    assert_eq!(legacy_data.state_snapshot(), data.state_snapshot());
    assert_eq!(exports(&legacy_stores), exports(&stores));
}

/// SSSP: workset-driven delta refresh through the builder and through
/// the deprecated `DeltaIterEngine` constructor.
#[test]
fn sssp_builder_matches_legacy_delta_engine() {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = Sssp { source: 0 };
    let graph = GraphGen::new(400, 2400, 0x55E1).weighted();
    let delta = weighted_graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: 0.05,
            delete_fraction: 0.0,
            insert_fraction: 0.01,
            seed: 0x55E1,
        },
    );
    let initial = IterParams {
        max_iterations: 300,
        epsilon: 1e-12,
        preserve: PreserveMode::FinalOnly,
    };
    let incr = IncrParams {
        filter_threshold: Some(0.0),
        convergence_epsilon: 1e-12,
        max_iterations: 300,
        ..Default::default()
    };

    let converge = |tag: &str| {
        let stores = StoreManager::create(&pool, scratch(tag), N, Default::default()).unwrap();
        let mut data = build_partitioned(&spec, N, graph.clone());
        let session = RunBuilder::new(&spec)
            .pool(&pool)
            .job(cfg.clone())
            .iter(initial)
            .stores_ref(&stores)
            .build()
            .unwrap();
        assert!(session.run_initial(&mut data).unwrap().converged);
        drop(session);
        (data, stores)
    };

    let (mut legacy_data, legacy_stores) = converge("sssp-legacy");
    let legacy_rep = DeltaIterEngine::new(&spec, cfg.clone(), incr, IterParams::default())
        .unwrap()
        .run(&pool, &mut legacy_data, &legacy_stores, &delta, None)
        .unwrap();

    let (mut data, stores) = converge("sssp-builder");
    let rep = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(incr)
        .stores_ref(&stores)
        .build()
        .unwrap()
        .run_delta(&mut data, &delta)
        .unwrap();

    assert_eq!(legacy_rep.converged, rep.converged);
    assert_eq!(legacy_rep.worksets, rep.worksets);
    assert_eq!(legacy_data.state_snapshot(), data.state_snapshot());
    assert_eq!(exports(&legacy_stores), exports(&stores));
}

/// A serving handle on a session's store plane sees the writes of an
/// incremental refresh, and keeps answering identically across a forced
/// compaction of every shard (file generation bump under live readers).
#[test]
fn serve_reads_your_writes_across_forced_compaction() {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(200, 1400, 0x5E4E).generate();

    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .incr(IncrParams {
            convergence_epsilon: 1e-9,
            max_iterations: 80,
            ..Default::default()
        })
        .store_dir(scratch("serve-ryw"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph.clone());
    session.run_initial(&mut data).unwrap();
    let stores = session.stores().expect("session owns a store plane");

    // Pin down every live chunk through the serving plane.
    let serve = session.serve().unwrap();
    let mut live: Vec<(usize, Chunk)> = Vec::new();
    for p in 0..stores.n_shards() {
        for chunk in stores.with_store(p, |s| s.all_chunks()).unwrap() {
            assert_eq!(
                serve.get(p, &chunk.key).unwrap().as_ref(),
                Some(&chunk),
                "serving plane disagrees with the exclusive read path"
            );
            live.push((p, chunk));
        }
    }
    assert!(!live.is_empty());

    // Refresh through the same session while the handle stays open: the
    // merge bumps shard data versions, so cached entries must refetch.
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0x5E4E));
    session.run_incremental(&mut data, &delta).unwrap();
    for p in 0..stores.n_shards() {
        for chunk in stores.with_store(p, |s| s.all_chunks()).unwrap() {
            assert_eq!(serve.get(p, &chunk.key).unwrap(), Some(chunk));
        }
    }

    // Force an offline compaction of every shard: live data is unchanged
    // but every data file is rewritten (reader generation bump). The
    // handle's pooled readers must chase the new files transparently.
    stores.compact_all(u64::MAX).unwrap();
    for p in 0..stores.n_shards() {
        for chunk in stores.with_store(p, |s| s.all_chunks()).unwrap() {
            assert_eq!(serve.get(p, &chunk.key).unwrap(), Some(chunk));
        }
    }
    let metrics = serve.metrics();
    assert!(metrics.hits + metrics.misses > 0);
}

/// Cursor-fed refreshes: an invalidation recomputes exactly the affected
/// key (workset = its delete+re-insert, state unchanged at the fixed
/// point), a source config bump stales the cursor, and re-beginning it
/// replays cleanly.
#[test]
fn stale_cursor_invalidation_recomputes_exactly_the_affected_keys() {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(120, 700, 0xC4A5).generate();

    let init = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 200,
            epsilon: 1e-10,
            preserve: PreserveMode::FinalOnly,
        })
        .store_dir(scratch("cursor"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph.clone());
    assert!(init.run_initial(&mut data).unwrap().converged);
    let stores = init.finish().unwrap().stores.expect("session-owned");
    let baseline = data.state_snapshot();

    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(IncrParams {
            // Keep the refresh workset-scheduled so worksets[] mirrors
            // exactly what the invalidation touched.
            pdelta_threshold: 2.0,
            max_iterations: 300,
            ..Default::default()
        })
        .stores_ref(&stores)
        .build()
        .unwrap();

    let src: MemSource<u64, Vec<u64>> = MemSource::new(2);
    let mut cursor = IngestCursor::begin(&src, session.config().config_hash());

    // Nothing ingested: a no-op refresh that never enters the engine.
    let rep = session.refresh_from(&mut data, &mut cursor, &src).unwrap();
    assert!(rep.converged);
    assert!(rep.iterations.is_empty());

    // Invalidate one live vertex: the refresh re-maps exactly its
    // structure record (delete + re-insert in the workset) and settles
    // back onto the same fixed point.
    let key = graph[7].0;
    src.push_invalidate(0, key);
    let rep = session.refresh_from(&mut data, &mut cursor, &src).unwrap();
    assert!(rep.converged);
    assert_eq!(rep.worksets[0], 2, "delete + re-insert of the one key");
    assert_eq!(rep.per_iteration[0].invalidated_keys, 1);
    assert_eq!(rep.per_iteration[0].ingested_records, 0);
    // The recompute settles back onto the same fixed point — same key
    // set, values within convergence tolerance (the re-derived value
    // walks to the fixed point, it doesn't copy the old bits).
    let recomputed = data.state_snapshot();
    assert_eq!(
        baseline.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        recomputed.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );
    for ((k, a), (_, b)) in baseline.iter().zip(&recomputed) {
        assert!((a - b).abs() < 1e-6, "key {k}: {a} vs {b}");
    }

    // Producer-side config change: the cursor is stale, the refresh is
    // refused, and the high-water marks stay put.
    src.bump_config();
    src.push_insert(1, 9999, vec![key]);
    let err = session.refresh_from(&mut data, &mut cursor, &src);
    assert!(err.is_err(), "stale cursor must refuse to ingest");
    assert_eq!(data.state_snapshot(), recomputed, "no partial ingestion");

    // Re-begin against the new source version: the feed replays from the
    // head and the new record lands (a new vertex pointing at `key`).
    let mut cursor = IngestCursor::begin(&src, session.config().config_hash());
    let rep = session.refresh_from(&mut data, &mut cursor, &src).unwrap();
    assert!(rep.converged);
    assert_eq!(rep.per_iteration[0].ingested_records, 1);
    assert!(
        data.state_snapshot().iter().any(|(k, _)| *k == 9999),
        "replayed record must join the state"
    );
}
