//! The self-tuning runtime's core contract: controllers only ever decide
//! *when and where* work is scheduled — compaction horizons, task grain,
//! sort inlining — never *what* is computed. So a run with
//! `TuningMode::Active` must produce **f64-bitwise identical** state and
//! byte-identical store exports to a `TuningMode::Off` run from the same
//! seeded inputs.
//!
//! Also pinned here:
//! * `Observe` logs proposed decisions without applying any of them (no
//!   shard policy overrides, pool grain stays 0);
//! * `Active` with an aggressive controller shape actually moves knobs
//!   (the equivalence is not vacuous);
//! * the serve-p99 guard suppresses eagerness raises while the ceiling is
//!   exceeded.

use i2mapreduce::algos::pagerank::PageRank;
use i2mapreduce::common::tuner::{KnobSpec, TuningConfig, TuningMode};
use i2mapreduce::core::build_partitioned;
use i2mapreduce::datagen::delta::{graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::prelude::*;
use i2mapreduce::store::runtime::StoreManager;

const N: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "i2mr-tuner-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn exports(stores: &StoreManager) -> Vec<Vec<u8>> {
    (0..stores.n_shards())
        .map(|p| stores.export(p).unwrap())
        .collect()
}

/// An aggressive tuning shape that moves on the small fixtures used here:
/// zero deadbands and cooldowns, low targets, so every fence proposes a
/// move and the equivalence below is exercised, not vacuous.
fn aggressive() -> TuningConfig {
    TuningConfig {
        mode: TuningMode::Active,
        compaction: KnobSpec {
            lo: 0.0,
            hi: 1.0,
            step: 0.5,
            target: 0.01,
            deadband: 0.0,
            cooldown: 0,
        },
        grain: KnobSpec {
            lo: 0.0,
            hi: 4.0,
            step: -1.0,
            target: 1e12, // records-per-partition always below target → raise
            deadband: 0.0,
            cooldown: 0,
        },
        sort_inline: KnobSpec {
            lo: 0.0,
            hi: 1024.0,
            step: -256.0,
            target: 1e12,
            deadband: 0.0,
            cooldown: 0,
        },
        ..TuningConfig::default()
    }
}

/// Run seeded PageRank (initial with preservation, then an incremental
/// refresh) under the given tuning config; return the final state bits,
/// the store exports, and the refresh's tuning decisions.
fn run_pagerank(
    tag: &str,
    tuning: TuningConfig,
) -> (
    Vec<(u64, f64)>,
    Vec<Vec<u8>>,
    Vec<i2mapreduce::common::tuner::TuningDecision>,
) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0x7E57).generate();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0x7E57));

    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .tuning(tuning)
        .store_dir(scratch(tag))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    let initial = session.run_initial(&mut data).unwrap();
    let mut decisions = initial.tuning;
    let stores = session.finish().unwrap().stores.expect("session-owned");

    let refresh = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(IncrParams {
            convergence_epsilon: 1e-9,
            max_iterations: 80,
            ..Default::default()
        })
        .tuning(tuning)
        .stores_ref(&stores)
        .build()
        .unwrap();
    let report = refresh.run_incremental(&mut data, &delta).unwrap();
    decisions.extend(report.tuning);

    (data.state_snapshot(), exports(&stores), decisions)
}

/// `Active` ≡ `Off`, bit for bit — and the `Active` run really moved knobs.
#[test]
fn active_tuning_is_bitwise_identical_to_off() {
    let (state_off, stores_off, decisions_off) =
        run_pagerank("off", TuningConfig::with_mode(TuningMode::Off));
    let (state_on, stores_on, decisions_on) = run_pagerank("active", aggressive());

    assert!(decisions_off.is_empty(), "Off must not run controllers");
    assert!(
        decisions_on.iter().any(|d| d.applied),
        "aggressive Active config must actually apply moves"
    );

    assert_eq!(state_off.len(), state_on.len());
    for ((k_off, v_off), (k_on, v_on)) in state_off.iter().zip(&state_on) {
        assert_eq!(k_off, k_on);
        assert_eq!(
            v_off.to_bits(),
            v_on.to_bits(),
            "key {k_off}: Active diverged from Off"
        );
    }
    assert_eq!(
        stores_off, stores_on,
        "store exports must be byte-identical"
    );
}

/// `Observe` proposes the same moves `Active` would but applies none of
/// them: every decision carries `applied == false` and the actuators stay
/// at their untuned values.
#[test]
fn observe_logs_without_touching_actuators() {
    let (_, _, decisions) = run_pagerank(
        "observe",
        TuningConfig {
            mode: TuningMode::Observe,
            ..aggressive()
        },
    );
    assert!(!decisions.is_empty(), "Observe must log proposed moves");
    assert!(
        decisions.iter().all(|d| !d.applied),
        "Observe must never apply a move"
    );
}

/// With the serve-p99 ceiling set to 1 ns and traffic on the serving
/// plane, every eagerness-*raising* compaction move is vetoed (rolled
/// back, logged unapplied); grain and sort knobs keep operating.
#[test]
fn serve_guard_suppresses_compaction_eagerness_raises() {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0x9A4D).generate();
    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0x9A4D));

    // Converge untuned, then refresh through a *fresh* session whose
    // controllers start cold (so the guard vetoes the very first raises
    // instead of finding the knobs already railed).
    let init = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg.clone())
        .iter(IterParams {
            max_iterations: 80,
            epsilon: 1e-9,
            preserve: PreserveMode::FinalOnly,
        })
        .store_dir(scratch("guard"))
        .build()
        .unwrap();
    let mut data = build_partitioned(&spec, N, graph);
    init.run_initial(&mut data).unwrap();
    let stores = init.finish().unwrap().stores.expect("session-owned");

    let session = RunBuilder::new(&spec)
        .pool(&pool)
        .job(cfg)
        .incr(IncrParams {
            convergence_epsilon: 1e-9,
            max_iterations: 80,
            ..Default::default()
        })
        .tuning(TuningConfig {
            serve_p99_ceiling_nanos: 1, // any recorded lookup breaches it
            ..aggressive()
        })
        .stores_ref(&stores)
        .build()
        .unwrap();

    // Put traffic on the serving lane so the histogram has samples
    // (every real lookup takes > 1 ns).
    let serve = session.serve().unwrap();
    for p in 0..stores.n_shards() {
        for chunk in stores.with_store(p, |s| s.all_chunks()).unwrap() {
            assert!(serve.get(p, &chunk.key).unwrap().is_some());
        }
    }

    let report = session.run_incremental(&mut data, &delta).unwrap();
    let raises: Vec<_> = report
        .tuning
        .iter()
        .filter(|d| d.knob == "compaction" && d.signal > 0.01)
        .collect();
    assert!(
        report
            .tuning
            .iter()
            .filter(|d| d.knob == "compaction")
            .all(|d| !d.applied || d.after <= d.before),
        "no eagerness raise may be applied while the ceiling is breached: {raises:?}"
    );
    // The global knobs are not subject to the serving guard.
    assert!(report
        .tuning
        .iter()
        .any(|d| d.knob != "compaction" && d.applied));
}
