//! Cross-crate integration tests: the core correctness contract.
//!
//! Every incremental refresh must be equivalent to re-computing from
//! scratch on the updated input ("results generated from this incremental
//! computation are logically the same as the results from completely
//! re-computing A'", paper §3.1). These tests drive the full public API
//! through the `i2mapreduce` facade.

use i2mapreduce::algos::{apriori, gimv, pagerank, sssp};
use i2mapreduce::core::incr_iter::IncrParams;
use i2mapreduce::core::iterative::PreserveMode;
use i2mapreduce::datagen::delta::{
    graph_delta, matrix_delta, tweets_append, weighted_graph_delta, DeltaSpec,
};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::datagen::matrix::MatrixGen;
use i2mapreduce::datagen::text::TweetGen;
use i2mapreduce::prelude::*;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn pagerank_incremental_chain_tracks_recompute() {
    // Three consecutive delta batches; the refreshed state must track a
    // from-scratch recompute after every batch.
    let cfg = JobConfig::symmetric(3);
    let pool = WorkerPool::new(3);
    let spec = pagerank::PageRank::default();
    let mut graph = GraphGen::new(400, 2800, 0xC0FFEE).generate();

    let (mut data, stores, _) = pagerank::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        &spec,
        &scratch("pr-chain"),
        Default::default(),
        300,
        1e-11,
        PreserveMode::FinalOnly,
    )
    .unwrap();

    for round in 0..3u64 {
        let delta = graph_delta(
            &graph,
            DeltaSpec {
                change_fraction: 0.04,
                delete_fraction: 0.1,
                insert_fraction: 0.01,
                seed: 0xBEEF + round,
            },
        );
        let (report, _) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                max_iterations: 500,
                convergence_epsilon: 1e-9,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(report.converged, "round {round} did not converge");

        graph = delta.apply_to(&graph);
        let (oracle, _) = pagerank::itermr(&pool, &cfg, &graph, &spec, 500, 1e-11).unwrap();
        let got = data.state_snapshot();
        let want = oracle.state_snapshot();
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            want.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            "round {round}: key sets diverged"
        );
        for ((k, a), (_, b)) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() < 5e-4,
                "round {round}, vertex {k}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn sssp_incremental_is_exact_with_ft0() {
    let cfg = JobConfig::symmetric(3);
    let pool = WorkerPool::new(3);
    let graph = GraphGen::new(300, 2000, 0x5555).weighted();
    let (mut data, stores, _) = sssp::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        0,
        &scratch("sssp-x"),
        Default::default(),
        300,
    )
    .unwrap();

    let delta = weighted_graph_delta(&graph, DeltaSpec::ten_percent(0xAB));
    let (report, _) =
        sssp::i2mr_incremental(&pool, &cfg, &mut data, &stores, 0, &delta, 300).unwrap();
    assert!(report.converged);

    let updated = delta.apply_to(&graph);
    let (oracle, _) = sssp::itermr(&pool, &cfg, &updated, 0, 300).unwrap();
    for ((k, a), (_, b)) in data
        .state_snapshot()
        .iter()
        .zip(oracle.state_snapshot().iter())
    {
        match (a.is_finite(), b.is_finite()) {
            (true, true) => assert!((a - b).abs() < 1e-9, "vertex {k}: {a} vs {b}"),
            (false, false) => {}
            _ => panic!("vertex {k}: {a} vs {b}"),
        }
    }
}

#[test]
fn gimv_incremental_matches_recompute() {
    let cfg = JobConfig::symmetric(2);
    let pool = WorkerPool::new(2);
    let blocks = MatrixGen::new(48, 8, 900, 0x99).blocks();
    let spec = gimv::Gimv {
        block_size: 8,
        damping: 0.85,
    };
    let (mut data, stores, _) = gimv::i2mr_initial(
        &pool,
        &cfg,
        &blocks,
        &spec,
        &scratch("gimv-x"),
        Default::default(),
        300,
        1e-11,
    )
    .unwrap();
    let delta = matrix_delta(&blocks, DeltaSpec::ten_percent(0x44));
    let (report, _) =
        gimv::i2mr_incremental(&pool, &cfg, &mut data, &stores, &spec, &delta, 500, 1e-10).unwrap();
    assert!(report.converged);

    let updated = delta.apply_to(&blocks);
    let (oracle, _) = gimv::itermr(&pool, &cfg, &updated, &spec, 500, 1e-12).unwrap();
    for ((i, a), (_, b)) in data
        .state_snapshot()
        .iter()
        .zip(oracle.state_snapshot().iter())
    {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5, "block {i}: {x} vs {y}");
        }
    }
}

#[test]
fn apriori_incremental_equals_plain_recount() {
    let cfg = JobConfig::symmetric(3);
    let pool = WorkerPool::new(3);
    let gen = TweetGen::new(400, 0x77);
    let corpus = gen.generate(0, 1200);
    let candidates = apriori::Candidates::generate(&corpus, 10);

    let mut engine = apriori::AprioriEngine::new(cfg.clone(), candidates.clone()).unwrap();
    engine.initial(&pool, &corpus).unwrap();

    // Two successive append batches.
    let d1 = tweets_append(&gen, 1200, 0.079);
    engine.incremental(&pool, &d1).unwrap();
    let after1 = d1.apply_to(&corpus);
    let d2 = tweets_append(&gen, after1.len() as u64, 0.05);
    engine.incremental(&pool, &d2).unwrap();

    let full = d2.apply_to(&after1);
    let (want, _) = apriori::plainmr(&pool, &cfg, &full, &candidates).unwrap();
    assert_eq!(engine.counts(), want);
}

#[test]
fn onestep_engine_survives_compaction_and_strategy_changes() {
    // The refreshed output must be invariant to store internals: query
    // strategy choice and offline compaction timing.
    use i2mapreduce::store::QueryStrategy;

    let mapper = |_k: &u64, adj: &String, out: &mut Emitter<u64, f64>| {
        for part in adj.split(';').filter(|s| !s.is_empty()) {
            let (dst, w) = part.split_once(':').unwrap();
            out.emit(dst.parse().unwrap(), w.parse().unwrap());
        }
    };
    let reducer =
        |k: &u64, vs: Values<u64, f64>, out: &mut Emitter<u64, f64>| out.emit(*k, vs.iter().sum());

    let input: Vec<(u64, String)> = (0..80u64)
        .map(|i| (i, format!("{}:1.5;{}:0.5", (i + 1) % 80, (i + 7) % 80)))
        .collect();

    let strategies = [
        QueryStrategy::IndexOnly,
        QueryStrategy::SingleFixWindow { window: 4096 },
        QueryStrategy::MultiFixWindow { window: 4096 },
        QueryStrategy::MultiDynamicWindow {
            gap_threshold: 1024,
        },
    ];
    let mut outputs = Vec::new();
    for (si, strategy) in strategies.iter().enumerate() {
        let pool = WorkerPool::new(3);
        let mut eng: OneStepEngine<u64, String, u64, f64, u64, f64> = OneStepEngine::create(
            &pool,
            scratch(&format!("strat-{si}")),
            JobConfig::symmetric(3),
            StoreConfig::default(),
        )
        .unwrap();
        eng.set_store_strategy(*strategy);
        eng.initial(&input, &mapper, &HashPartitioner, &reducer)
            .unwrap();
        for round in 0..3u64 {
            let mut delta = Delta::new();
            let k = (round * 13) % 80;
            delta.update(
                k,
                input[k as usize].1.clone(),
                format!("{}:9.0", (k + 3) % 80),
            );
            // NB: rounds after the first re-update the same key, so give
            // apply_to-compatible old values only on round 0; afterwards
            // update from the current record. Simplest: distinct keys.
            let _ = &delta;
            eng.incremental(&delta, &mapper, &HashPartitioner, &reducer)
                .unwrap();
            if round == 1 {
                eng.compact_stores().unwrap();
            }
        }
        outputs.push(eng.output());
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0], "output depends on store strategy");
    }
}

#[test]
fn fault_injected_iterative_run_equals_clean_run() {
    use i2mapreduce::mapred::fault::{FaultPlan, FaultSpec, TaskKind};
    use std::sync::Arc;

    let spec = pagerank::PageRank::default();
    let cfg = JobConfig {
        n_map: 6,
        n_reduce: 6,
        n_workers: 3,
        max_attempts: 3,
        detection_delay: std::time::Duration::ZERO,
    };
    let graph = GraphGen::new(200, 1400, 0xFA).generate();

    let plan = Arc::new(FaultPlan::new(vec![
        FaultSpec {
            kind: TaskKind::Map,
            index: 2,
            iteration: Some(2),
            attempt: 1,
        },
        FaultSpec {
            kind: TaskKind::Reduce,
            index: 4,
            iteration: Some(3),
            attempt: 1,
        },
    ]));
    let faulty_pool = WorkerPool::with_faults(3, 3, std::time::Duration::ZERO, plan);
    let config = EngineConfig {
        job: cfg.clone(),
        iter: IterParams {
            max_iterations: 8,
            epsilon: 0.0,
            preserve: PreserveMode::None,
        },
        ..Default::default()
    };
    let mut faulty = i2mapreduce::core::build_partitioned(&spec, 6, graph.clone());
    RunBuilder::new(&spec)
        .config(config.clone())
        .pool(&faulty_pool)
        .build()
        .unwrap()
        .run_initial(&mut faulty)
        .unwrap();

    let clean_pool = WorkerPool::new(3);
    let mut clean = i2mapreduce::core::build_partitioned(&spec, 6, graph);
    RunBuilder::new(&spec)
        .config(config)
        .pool(&clean_pool)
        .build()
        .unwrap()
        .run_initial(&mut clean)
        .unwrap();

    assert_eq!(faulty.state_snapshot(), clean.state_snapshot());
    let tl = faulty_pool.take_timeline();
    assert_eq!(tl.failures().len(), 2, "both faults must have fired");
}

#[test]
fn checkpoint_recovery_resumes_incremental_run() {
    use i2mapreduce::core::IterCheckpointer;
    use i2mapreduce::store::StoreManager;

    let cfg = JobConfig::symmetric(2);
    let pool = WorkerPool::new(2);
    let spec = pagerank::PageRank::default();
    let graph = GraphGen::new(150, 1000, 0xCE).generate();
    let dir = scratch("ckpt-resume");

    let (mut data, stores, _) = pagerank::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        &spec,
        &dir.join("stores"),
        Default::default(),
        300,
        1e-11,
        PreserveMode::FinalOnly,
    )
    .unwrap();

    let dfs = i2mapreduce::dfs::MiniDfs::open_with(dir.join("dfs"), 1 << 20, 2).unwrap();
    let ck = IterCheckpointer::new(&dfs, "resume-test", 2);

    let delta = graph_delta(&graph, DeltaSpec::ten_percent(0xD1));
    let (report, _) = pagerank::i2mr_incremental(
        &pool,
        &cfg,
        &mut data,
        &stores,
        &spec,
        &delta,
        IncrParams {
            max_iterations: 400,
            ..Default::default()
        },
        Some(&ck),
    )
    .unwrap();
    assert!(report.converged);

    // "Crash" after the run: a new process restores the latest complete
    // checkpoint and must see exactly the final state and stores.
    let latest = ck.latest_complete(true).expect("checkpoints written");
    let restored_state: Vec<Vec<(u64, f64)>> = ck.load_state(latest).unwrap();
    assert_eq!(restored_state, data.state);
    let restored_stores: StoreManager = ck
        .load_stores(&pool, latest, dir.join("restored"), Default::default())
        .unwrap();
    assert_eq!(restored_stores.len(), stores.len());
    // Restored shards are byte-identical to the live ones (live-chunk
    // canonical export), partition by partition.
    for p in 0..stores.n_shards() {
        assert_eq!(
            stores.export(p).unwrap(),
            restored_stores.export(p).unwrap()
        );
    }
}
