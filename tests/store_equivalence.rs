//! Store-plane equivalence: the sharded, background-compacting store
//! runtime must be **byte-identical** to the serial plane.
//!
//! The store runtime changes *where* and *when* store work happens —
//! merges as concurrent partition-affine pool tasks, compaction scheduled
//! by policy between iterations — but must never change *what* the store
//! holds. These tests drive a seeded incremental PageRank refresh through
//! both planes and compare: final state bit-for-bit, and every shard's
//! canonical export byte-for-byte after a closing compaction.
//!
//! CI runs this file under the `ci` profile (release + debug assertions),
//! so `append_batch`'s canonical-batch-order debug-asserts are armed.

use i2mapreduce::algos::pagerank::{self, PageRank};
use i2mapreduce::core::incr_iter::IncrParams;
use i2mapreduce::core::iterative::PreserveMode;
use i2mapreduce::datagen::delta::{graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::prelude::*;
use i2mapreduce::store::{CompactionPolicy, StoreManager, StoreRuntimeConfig};

const N: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-store-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Run the full seeded PageRank lifecycle — preserved initial convergence
/// plus two incremental delta refreshes — on one store plane. Returns the
/// final state snapshot, the manager, and the background-compaction count
/// the engines recorded along the way.
fn run_lifecycle(tag: &str, runtime: StoreRuntimeConfig) -> (Vec<(u64, f64)>, StoreManager, u64) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = PageRank::default();
    let graph = GraphGen::new(300, 2100, 0x5EED).generate();

    // EveryIteration preservation piles up one batch per iteration, so the
    // sharded plane's compaction policy genuinely fires mid-run.
    let (mut data, stores, initial_run) = pagerank::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        &spec,
        &scratch(tag),
        runtime,
        300,
        1e-10,
        PreserveMode::EveryIteration,
    )
    .unwrap();

    let mut compactions = initial_run.metrics.store_compactions;
    let mut cur = graph;
    for round in 0..2u64 {
        let delta = graph_delta(
            &cur,
            DeltaSpec {
                change_fraction: 0.08,
                delete_fraction: 0.1,
                insert_fraction: 0.02,
                seed: 0xACE + round,
            },
        );
        let (report, run) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &stores,
            &spec,
            &delta,
            IncrParams {
                max_iterations: 400,
                convergence_epsilon: 1e-9,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(report.converged, "{tag}: round {round} did not converge");
        compactions += run.metrics.store_compactions;
        cur = delta.apply_to(&cur);
    }
    (data.state_snapshot(), stores, compactions)
}

/// An eager policy so background compaction provably interleaves with the
/// run even at test-sized stores.
fn eager_sharded() -> StoreRuntimeConfig {
    StoreRuntimeConfig {
        policy: CompactionPolicy {
            min_garbage_ratio: 0.2,
            min_batches: 3,
            min_file_bytes: 0,
        },
        parallel: true,
        ..Default::default()
    }
}

#[test]
fn sharded_background_compaction_plane_is_byte_identical_to_serial() {
    let (serial_state, serial_mgr, serial_compactions) =
        run_lifecycle("serial", StoreRuntimeConfig::serial());
    let (sharded_state, sharded_mgr, sharded_compactions) =
        run_lifecycle("sharded", eager_sharded());

    // The planes must actually differ in behavior for this test to prove
    // anything: the serial plane never compacts, the sharded plane's
    // policy fires during the run.
    assert_eq!(serial_compactions, 0, "serial plane must never compact");
    assert!(
        sharded_compactions > 0,
        "sharded plane's compaction policy never fired mid-run"
    );

    // State: exactly equal, not merely close — the planes run the same
    // per-partition computation in the same order.
    assert_eq!(serial_state, sharded_state, "state snapshots diverged");

    // Stores: after a closing compaction, every shard's canonical export
    // (live chunks, lexicographic order, fresh offsets) must match
    // byte-for-byte, regardless of how differently the two planes batched
    // and reclaimed along the way. (Each manager schedules on its own
    // executor handle now — no pool to thread through.)
    serial_mgr.compact_all(u64::MAX).unwrap();
    sharded_mgr.compact_all(u64::MAX).unwrap();
    for p in 0..N {
        assert_eq!(
            serial_mgr.export(p).unwrap(),
            sharded_mgr.export(p).unwrap(),
            "shard {p}: serial and sharded store contents diverged"
        );
    }
}

#[test]
fn compaction_is_idempotent_on_a_real_run() {
    let (_, mgr, _) = run_lifecycle("idem", eager_sharded());

    mgr.compact_all(1).unwrap();
    let exports: Vec<Vec<u8>> = (0..N).map(|p| mgr.export(p).unwrap()).collect();
    let reclaimed_again = mgr.compact_all(2).unwrap();
    assert_eq!(reclaimed_again, 0, "second compaction must reclaim nothing");
    for (p, want) in exports.iter().enumerate() {
        assert_eq!(
            &mgr.export(p).unwrap(),
            want,
            "shard {p}: compaction is not idempotent"
        );
        mgr.with_store_ref(p, |s| assert_eq!(s.n_batches(), 1));
    }
}
