//! Seeded chaos soak: the fault-tolerance plane must make injected faults
//! **invisible in the results**. Each scenario fixes one workload (graph +
//! delta + engine path), computes its fault-free reference once, then
//! replays the refresh under `I2MR_CHAOS_ROUNDS` (default 50) distinct
//! seeded fault schedules. Every faulted run must
//!
//! * return `Ok` (no escaped panic, no process abort),
//! * converge to the **bit-identical** state fixed point, and
//! * leave **byte-identical** per-shard MRBG-Store exports.
//!
//! Four scenarios × 50 rounds = 200 schedules:
//!
//! 1. task-level `Error` faults with **no executor retries** — failures
//!    escape to the engine's checkpoint-rewind path (PageRank, incr),
//! 2. worker **panics** absorbed by cross-worker rescheduling (PageRank,
//!    incr),
//! 3. store-plane I/O faults absorbed by task retries (SSSP, delta-iter),
//! 4. **torn tails** tampered onto shard chunk files, salvaged on reopen
//!    (SSSP, delta-iter).

use i2mapreduce::algos::{pagerank, sssp};
use i2mapreduce::core::checkpoint::IterCheckpointer;
use i2mapreduce::core::incr_iter::IncrParams;
use i2mapreduce::core::iterative::PreserveMode;
use i2mapreduce::datagen::delta::{graph_delta, weighted_graph_delta, DeltaSpec};
use i2mapreduce::datagen::graph::GraphGen;
use i2mapreduce::dfs::MiniDfs;
use i2mapreduce::mapred::fault::{FailAction, FailSite, FailpointRegistry};
use i2mapreduce::mapred::pool::PoolConfig;
use i2mapreduce::prelude::*;
use i2mapreduce::store::runtime::StoreManager;
use std::sync::Arc;

const N: usize = 3;

fn rounds() -> u64 {
    std::env::var("I2MR_CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("i2mr-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Rebuild a store plane from checkpoint-format payloads under `dir`,
/// scheduling on `pool`. Unlike [`StoreManager::open`] this runs no pool
/// tasks, so an armed `TaskRun` budget is spent by the engine, not setup.
fn import_stores(pool: &WorkerPool, dir: &std::path::Path, payloads: &[Vec<u8>]) -> StoreManager {
    let shards = payloads
        .iter()
        .enumerate()
        .map(|(p, payload)| {
            MrbgStore::import(dir.join(format!("shard-{p}")), payload, Default::default()).unwrap()
        })
        .collect();
    StoreManager::from_stores(pool, shards, Default::default()).unwrap()
}

/// PageRank refresh params: exact propagation with the P∆ monitor
/// disabled, so the whole soak exercises the incremental path (the
/// fallback engine has its own recovery test in scenario 2, where faults
/// are absorbed below it).
fn pr_params() -> IncrParams {
    IncrParams {
        max_iterations: 400,
        pdelta_threshold: 2.0,
        ..Default::default()
    }
}

/// Converged PageRank workload: (data, shard payloads, delta, reference
/// state, reference exports).
#[allow(clippy::type_complexity)]
fn pagerank_workload(
    tag: &str,
) -> (
    i2mapreduce::core::iter_engine::PartitionedData<u64, Vec<u64>, u64, f64>,
    Vec<Vec<u8>>,
    i2mapreduce::core::Delta<u64, Vec<u64>>,
    Vec<Vec<(u64, f64)>>,
    Vec<Vec<u8>>,
) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let spec = pagerank::PageRank::default();
    let graph = GraphGen::new(48, 200, 0xC0A5).generate();
    let (data0, st0, _) = pagerank::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        &spec,
        &scratch(&format!("pr-{tag}-seed")),
        Default::default(),
        300,
        1e-11,
        PreserveMode::FinalOnly,
    )
    .unwrap();
    let payloads: Vec<Vec<u8>> = (0..N).map(|p| st0.export(p).unwrap()).collect();
    drop(st0);

    let delta = graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: 0.08,
            delete_fraction: 0.1,
            insert_fraction: 0.02,
            seed: 0xFACE,
        },
    );

    // Fault-free reference on a clean pool.
    let dir = scratch(&format!("pr-{tag}-ref"));
    let st = import_stores(&pool, &dir, &payloads);
    let mut data = data0.clone();
    let (rep, _) = pagerank::i2mr_incremental(
        &pool,
        &cfg,
        &mut data,
        &st,
        &spec,
        &delta,
        pr_params(),
        None,
    )
    .unwrap();
    assert!(rep.converged, "{tag}: reference refresh did not converge");
    let exports: Vec<Vec<u8>> = (0..N).map(|p| st.export(p).unwrap()).collect();
    drop(st);
    let _ = std::fs::remove_dir_all(&dir);
    (data0, payloads, delta, data.state, exports)
}

/// Converged SSSP workload, same shape as [`pagerank_workload`].
#[allow(clippy::type_complexity)]
fn sssp_workload(
    tag: &str,
) -> (
    i2mapreduce::core::iter_engine::PartitionedData<u64, Vec<(u64, f64)>, u64, f64>,
    Vec<Vec<u8>>,
    i2mapreduce::core::Delta<u64, Vec<(u64, f64)>>,
    Vec<Vec<(u64, f64)>>,
    Vec<Vec<u8>>,
) {
    let cfg = JobConfig::symmetric(N);
    let pool = WorkerPool::new(N);
    let graph = GraphGen::new(48, 200, 0x55E0).weighted();
    let (data0, st0, _) = sssp::i2mr_initial(
        &pool,
        &cfg,
        &graph,
        0,
        &scratch(&format!("sssp-{tag}-seed")),
        Default::default(),
        300,
    )
    .unwrap();
    let payloads: Vec<Vec<u8>> = (0..N).map(|p| st0.export(p).unwrap()).collect();
    drop(st0);

    let delta = weighted_graph_delta(
        &graph,
        DeltaSpec {
            change_fraction: 0.08,
            delete_fraction: 0.0,
            insert_fraction: 0.02,
            seed: 0xABBA,
        },
    );

    let dir = scratch(&format!("sssp-{tag}-ref"));
    let st = import_stores(&pool, &dir, &payloads);
    let mut data = data0.clone();
    let (rep, _) = sssp::i2mr_delta(&pool, &cfg, &mut data, &st, 0, &delta, 300).unwrap();
    assert!(rep.converged, "{tag}: reference refresh did not converge");
    let exports: Vec<Vec<u8>> = (0..N).map(|p| st.export(p).unwrap()).collect();
    drop(st);
    let _ = std::fs::remove_dir_all(&dir);
    (data0, payloads, delta, data.state, exports)
}

/// Scenario 1: every task attempt dies (`Error`, rate 1.0) while the fault
/// budget lasts and the executor is forbidden to retry — each failure
/// escapes to the engine, which rewinds to the last sealed checkpoint and
/// resumes. Result must be bit-identical to the fault-free run, every
/// round, for budgets 1–3.
#[test]
fn task_faults_escape_to_checkpoint_rewind() {
    let cfg = JobConfig::symmetric(N);
    let spec = pagerank::PageRank::default();
    let (data0, payloads, delta, want_state, want_exports) = pagerank_workload("rewind");

    for r in 0..rounds() {
        let budget = 1 + (r % 3) as u32;
        let fp = Arc::new(FailpointRegistry::seeded(0x11D0 + r, budget).arm(
            FailSite::TaskRun,
            1.0,
            FailAction::Error,
        ));
        let pool = WorkerPool::with_config(PoolConfig {
            max_attempts: 1,
            failpoints: Arc::clone(&fp),
            ..PoolConfig::new(N)
        });
        let dir = scratch(&format!("rewind-{r}"));
        let st = import_stores(&pool, &dir, &payloads);
        let dfs = MiniDfs::open_with(dir.join("dfs"), 1 << 20, 2).unwrap();
        let ck = IterCheckpointer::new(&dfs, format!("chaos-rewind-{r}"), N);
        let mut data = data0.clone();

        let (rep, _) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &st,
            &spec,
            &delta,
            pr_params(),
            Some(&ck),
        )
        .unwrap();
        assert!(rep.converged, "round {r}: faulted refresh did not converge");
        assert_eq!(fp.fired(), budget as u64, "round {r}: budget not consumed");
        let total = rep.total_metrics();
        assert!(total.recovery_ms > 0, "round {r}: rewind cost unaccounted");
        assert!(
            total.rebuilt_shards >= N as u64,
            "round {r}: shards not rebuilt on rewind"
        );
        assert_eq!(want_state, data.state, "round {r}: state diverged");
        for (p, want) in want_exports.iter().enumerate() {
            assert_eq!(
                *want,
                st.export(p).unwrap(),
                "round {r}: shard {p} export diverged"
            );
        }
        drop(st);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Scenario 2: workers die mid-task (`Panic`, rate 0.5). Panic isolation
/// turns the death into a task failure and the executor reschedules the
/// attempt on a surviving worker; with budget ≤ 2 and 3 attempts the
/// faults never escape the pool, and no panic ever escapes the process.
#[test]
fn worker_deaths_absorbed_by_rescheduling() {
    let cfg = JobConfig::symmetric(N);
    let spec = pagerank::PageRank::default();
    let (data0, payloads, delta, want_state, want_exports) = pagerank_workload("panic");

    let mut total_fired = 0u64;
    let mut total_retries = 0u64;
    for r in 0..rounds() {
        let budget = 1 + (r % 2) as u32;
        let fp = Arc::new(FailpointRegistry::seeded(0xDEAD + r, budget).arm(
            FailSite::TaskRun,
            0.5,
            FailAction::Panic,
        ));
        let pool = WorkerPool::with_config(PoolConfig {
            failpoints: Arc::clone(&fp),
            ..PoolConfig::new(N)
        });
        let dir = scratch(&format!("panic-{r}"));
        let st = import_stores(&pool, &dir, &payloads);
        let mut data = data0.clone();

        let (rep, _) = pagerank::i2mr_incremental(
            &pool,
            &cfg,
            &mut data,
            &st,
            &spec,
            &delta,
            pr_params(),
            None,
        )
        .unwrap();
        assert!(rep.converged, "round {r}: faulted refresh did not converge");
        total_fired += fp.fired();
        total_retries += rep.total_metrics().retries;
        assert_eq!(want_state, data.state, "round {r}: state diverged");
        for (p, want) in want_exports.iter().enumerate() {
            assert_eq!(
                *want,
                st.export(p).unwrap(),
                "round {r}: shard {p} export diverged"
            );
        }
        drop(st);
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Rate 0.5 over dozens of task launches per round: the soak as a whole
    // must actually have killed workers and rescheduled their tasks.
    assert!(
        total_fired > rounds() / 2,
        "panics barely fired: {total_fired}"
    );
    assert!(
        total_retries >= total_fired,
        "retries {total_retries} < deaths {total_fired}"
    );
}

/// Scenario 3: the store plane's read and merge paths throw I/O errors
/// (rate 0.7, budget 2). The failpoints fire before any shard lock or
/// one-shot state is taken, so the executor's cross-worker retries absorb
/// them without double-applying merges — pinned by byte-identical exports.
#[test]
fn store_io_faults_absorbed_by_task_retries() {
    let cfg = JobConfig::symmetric(N);
    let (data0, payloads, delta, want_state, want_exports) = sssp_workload("storeio");

    let pool = WorkerPool::new(N);
    let mut total_fired = 0u64;
    for r in 0..rounds() {
        let fp = Arc::new(
            FailpointRegistry::seeded(0x10A + r, 2)
                .arm(FailSite::StoreRead, 0.7, FailAction::Error)
                .arm(FailSite::StoreAppend, 0.7, FailAction::Error),
        );
        let dir = scratch(&format!("storeio-{r}"));
        let mut st = import_stores(&pool, &dir, &payloads);
        st.set_failpoints(Arc::clone(&fp));
        let mut data = data0.clone();

        let (rep, _) = sssp::i2mr_delta(&pool, &cfg, &mut data, &st, 0, &delta, 300).unwrap();
        assert!(rep.converged, "round {r}: faulted refresh did not converge");
        total_fired += fp.fired();
        assert_eq!(want_state, data.state, "round {r}: state diverged");
        for (p, want) in want_exports.iter().enumerate() {
            assert_eq!(
                *want,
                st.export(p).unwrap(),
                "round {r}: shard {p} export diverged"
            );
        }
        drop(st);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        total_fired > rounds(),
        "store faults barely fired: {total_fired}"
    );
}

/// Scenario 4: a crash left a torn tail on one shard's chunk file. Reopen
/// must salvage (truncate the tail, count the bytes) and the refresh must
/// still land on the bit-identical fixed point.
#[test]
fn torn_tails_salvaged_on_reopen() {
    let cfg = JobConfig::symmetric(N);
    let (data0, payloads, delta, want_state, want_exports) = sssp_workload("torn");

    let pool = WorkerPool::new(N);
    for r in 0..rounds() {
        let dir = scratch(&format!("torn-{r}"));
        // Materialize the shards on disk, then simulate the crash: append
        // a partial frame of garbage to one shard's chunk file.
        drop(import_stores(&pool, &dir, &payloads));
        let victim = (r as usize) % N;
        let torn = vec![0xAB; 5 + (r as usize % 32)];
        let chunk_file = dir.join(format!("shard-{victim}")).join("mrbg.data");
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&chunk_file)
                .unwrap();
            f.write_all(&torn).unwrap();
        }

        let st = StoreManager::open(&pool, &dir, N, Default::default()).unwrap();
        let mut data = data0.clone();
        let (rep, _) = sssp::i2mr_delta(&pool, &cfg, &mut data, &st, 0, &delta, 300).unwrap();
        assert!(rep.converged, "round {r}: refresh did not converge");
        assert_eq!(
            rep.total_metrics().salvaged_bytes,
            torn.len() as u64,
            "round {r}: torn tail not salvaged"
        );
        assert_eq!(want_state, data.state, "round {r}: state diverged");
        for (p, want) in want_exports.iter().enumerate() {
            assert_eq!(
                *want,
                st.export(p).unwrap(),
                "round {r}: shard {p} export diverged"
            );
        }
        drop(st);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
